//! The host-memory global queue bridging Samplers and Trainers (§5.2).
//!
//! "GNNLab uses a global queue in the host memory to link two kinds of
//! executors asynchronously … The concurrent queue would not be the
//! bottleneck since the updates are infrequent." Samplers enqueue whole
//! mini-batch samples; Trainers (and woken standby Trainers) dequeue
//! them. The remaining-task count feeds the dynamic-switching profit
//! metric (`M_r` in §5.3).
//!
//! Unlike the seed's unbounded lock-free queue, this queue is
//!
//! * **bounded** — [`GlobalQueue::enqueue`] blocks once `capacity` tasks
//!   are waiting, so Samplers cannot race arbitrarily far ahead of
//!   Trainers and blow up host memory (the decoupled-pipeline failure
//!   mode BGL and NeutronOrch both call out);
//! * **blocking** — [`GlobalQueue::dequeue`] sleeps on a condition
//!   variable instead of making idle Trainers spin, waking on enqueue,
//!   close, or poison (with a periodic timeout as a lost-wakeup safety
//!   net);
//! * **closable** — the last Sampler calls [`GlobalQueue::close`];
//!   blocked consumers drain what remains and then observe
//!   [`DequeueError::Drained`];
//! * **poisonable** — a crashed executor calls [`GlobalQueue::poison`];
//!   every blocked producer and consumer wakes immediately with
//!   [`EnqueueError::Poisoned`] / [`DequeueError::Poisoned`] so a panic
//!   terminates the run in bounded time instead of deadlocking it.
//!
//! Occupancy counters live in an observability registry: a queue built
//! with [`GlobalQueue::bounded_with_obs`] records a `queue.depth` sample
//! on every enqueue and dequeue (plus `queue.enqueued`/`queue.dequeued`
//! counters, a `queue.capacity` gauge, and `queue.blocked_ns` for time
//! spent blocked on either side); a plain [`GlobalQueue::bounded`] queue
//! keeps a private registry so the accessors below work either way.

use gnnlab_obs::{names, Obs};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Default capacity when none is given: deep enough to decouple bursts,
/// shallow enough that a stalled Trainer back-pressures Samplers quickly.
pub const DEFAULT_CAPACITY: usize = 64;

/// Condvar waits re-check state at least this often, guarding against any
/// lost wakeup turning into an unbounded sleep.
const WAIT_SLICE: Duration = Duration::from_millis(50);

/// Why an [`GlobalQueue::enqueue`] call could not deliver its task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnqueueError {
    /// The queue was closed; no new tasks are accepted.
    Closed,
    /// An executor panicked; the run is being torn down.
    Poisoned(String),
}

/// Why a [`GlobalQueue::dequeue`] call returned no task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DequeueError {
    /// The queue was closed and every task has been consumed.
    Drained,
    /// An executor panicked; the run is being torn down.
    Poisoned(String),
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    poison: Option<String>,
}

/// A bounded, blocking MPMC queue in host memory with occupancy
/// accounting (see the module docs for the full contract).
#[derive(Debug)]
pub struct GlobalQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    obs: Arc<Obs>,
}

impl<T> Default for GlobalQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> GlobalQueue<T> {
    /// Creates an empty queue with [`DEFAULT_CAPACITY`] and a private
    /// (wall-clock) registry.
    pub fn new() -> Self {
        Self::bounded(DEFAULT_CAPACITY)
    }

    /// Creates an empty queue holding at most `capacity` tasks, with a
    /// private (wall-clock) registry.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> Self {
        Self::bounded_with_obs(capacity, Arc::new(Obs::wall()))
    }

    /// Creates an empty bounded queue publishing into a shared
    /// observability hub.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded_with_obs(capacity: usize, obs: Arc<Obs>) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        obs.metrics
            .gauge_set(names::QUEUE_CAPACITY, capacity as f64);
        GlobalQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                poison: None,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            obs,
        }
    }

    /// Creates an empty queue with [`DEFAULT_CAPACITY`] publishing into a
    /// shared observability hub.
    pub fn with_obs(obs: Arc<Obs>) -> Self {
        Self::bounded_with_obs(DEFAULT_CAPACITY, obs)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn note_depth(&self, depth: usize) {
        let depth = depth as f64;
        self.obs
            .metrics
            .sample(names::QUEUE_DEPTH, self.obs.now_ns(), depth);
        self.obs.metrics.gauge_set(names::QUEUE_DEPTH, depth);
    }

    /// Records one blocking episode of `blocked_ns` nanoseconds under the
    /// shared counter plus the side-specific histogram.
    fn note_blocked(&self, histogram: &str, blocked_ns: u64) {
        if blocked_ns > 0 {
            self.obs
                .metrics
                .counter_add(names::QUEUE_BLOCKED_NS, blocked_ns as f64);
            self.obs.metrics.observe(histogram, blocked_ns as f64);
        }
    }

    /// Enqueues a task (Sampler side), blocking while the queue is at
    /// capacity. Returns an error — with the task long dropped — once the
    /// queue is closed or poisoned.
    pub fn enqueue(&self, item: T) -> Result<(), EnqueueError> {
        let mut state = self.state.lock();
        let mut blocked_since: Option<u64> = None;
        loop {
            if let Some(reason) = &state.poison {
                let reason = reason.clone();
                drop(state);
                if let Some(t0) = blocked_since {
                    self.note_blocked(
                        names::QUEUE_ENQUEUE_BLOCK_NS,
                        self.obs.now_ns().saturating_sub(t0),
                    );
                }
                return Err(EnqueueError::Poisoned(reason));
            }
            if state.closed {
                return Err(EnqueueError::Closed);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                let depth = state.items.len();
                drop(state);
                self.obs.metrics.counter_inc(names::QUEUE_ENQUEUED);
                self.note_depth(depth);
                if let Some(t0) = blocked_since {
                    self.note_blocked(
                        names::QUEUE_ENQUEUE_BLOCK_NS,
                        self.obs.now_ns().saturating_sub(t0),
                    );
                }
                self.not_empty.notify_one();
                return Ok(());
            }
            blocked_since.get_or_insert_with(|| self.obs.now_ns());
            self.not_full.wait_for(&mut state, WAIT_SLICE);
        }
    }

    /// Dequeues a task (Trainer side), blocking while the queue is empty
    /// but still open. Returns [`DequeueError::Drained`] once the queue is
    /// closed and empty, or [`DequeueError::Poisoned`] as soon as an
    /// executor crash is flagged.
    pub fn dequeue(&self) -> Result<T, DequeueError> {
        self.dequeue_deadline(None)
            .map(|opt| opt.expect("deadline-free dequeue never times out"))
    }

    /// [`GlobalQueue::dequeue`] with a timeout: returns `Ok(None)` if no
    /// task arrived (and the queue neither drained nor poisoned) within
    /// `timeout`.
    pub fn dequeue_timeout(&self, timeout: Duration) -> Result<Option<T>, DequeueError> {
        self.dequeue_deadline(Some(timeout))
    }

    fn dequeue_deadline(&self, timeout: Option<Duration>) -> Result<Option<T>, DequeueError> {
        let start = std::time::Instant::now();
        let mut state = self.state.lock();
        let mut blocked_since: Option<u64> = None;
        let finish_blocked = |blocked_since: Option<u64>| {
            if let Some(t0) = blocked_since {
                self.note_blocked(names::QUEUE_WAIT_NS, self.obs.now_ns().saturating_sub(t0));
            }
        };
        loop {
            if let Some(reason) = &state.poison {
                let reason = reason.clone();
                drop(state);
                finish_blocked(blocked_since);
                return Err(DequeueError::Poisoned(reason));
            }
            if let Some(item) = state.items.pop_front() {
                let depth = state.items.len();
                drop(state);
                self.obs.metrics.counter_inc(names::QUEUE_DEQUEUED);
                self.note_depth(depth);
                finish_blocked(blocked_since);
                self.not_full.notify_one();
                return Ok(Some(item));
            }
            if state.closed {
                drop(state);
                finish_blocked(blocked_since);
                return Err(DequeueError::Drained);
            }
            let slice = match timeout {
                Some(t) => {
                    let left = t.saturating_sub(start.elapsed());
                    if left.is_zero() {
                        drop(state);
                        finish_blocked(blocked_since);
                        return Ok(None);
                    }
                    left.min(WAIT_SLICE)
                }
                None => WAIT_SLICE,
            };
            blocked_since.get_or_insert_with(|| self.obs.now_ns());
            self.not_empty.wait_for(&mut state, slice);
        }
    }

    /// Closes the queue: no further enqueues; consumers drain what is left
    /// and then observe [`DequeueError::Drained`]. Idempotent.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Poisons the queue after an executor crash: every pending and future
    /// enqueue/dequeue fails immediately with the given reason. The first
    /// reason wins; later calls keep it.
    pub fn poison(&self, reason: &str) {
        let mut state = self.state.lock();
        if state.poison.is_none() {
            state.poison = Some(reason.to_string());
        }
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`GlobalQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// The poison reason, if an executor crashed.
    pub fn poison_reason(&self) -> Option<String> {
        self.state.lock().poison.clone()
    }

    /// Tasks currently waiting (`M_r` for the profit metric).
    pub fn remaining(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Total tasks ever enqueued.
    pub fn total_enqueued(&self) -> usize {
        self.obs.metrics.counter(names::QUEUE_ENQUEUED) as usize
    }

    /// Total tasks ever dequeued.
    pub fn total_dequeued(&self) -> usize {
        self.obs.metrics.counter(names::QUEUE_DEQUEUED) as usize
    }

    /// Largest queue depth ever sampled.
    pub fn peak_depth(&self) -> usize {
        self.obs
            .metrics
            .gauge(names::QUEUE_DEPTH)
            .map_or(0, |g| g.max as usize)
    }

    /// Total nanoseconds producers and consumers spent blocked.
    pub fn blocked_ns(&self) -> u64 {
        self.obs.metrics.counter(names::QUEUE_BLOCKED_NS) as u64
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.state.lock().items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn fifo_single_thread() {
        let q = GlobalQueue::bounded(16);
        for i in 0..10 {
            q.enqueue(i).unwrap();
        }
        assert_eq!(q.remaining(), 10);
        for i in 0..10 {
            assert_eq!(q.dequeue(), Ok(i));
        }
        assert_eq!(q.dequeue_timeout(Duration::from_millis(1)), Ok(None));
        assert_eq!(q.total_enqueued(), 10);
        assert_eq!(q.total_dequeued(), 10);
        assert_eq!(q.peak_depth(), 10);
        assert_eq!(q.capacity(), 16);
    }

    #[test]
    fn concurrent_producers_consumers_preserve_items() {
        let q = Arc::new(GlobalQueue::bounded(8));
        // Producers and consumers run together: the bounded queue would
        // deadlock a produce-everything-first schedule at depth 8.
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        q.enqueue(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = q.dequeue() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for t in producers {
            t.join().unwrap();
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), 1000);
        all.dedup();
        assert_eq!(all.len(), 1000, "duplicates or losses detected");
        assert!(
            q.peak_depth() <= 8,
            "depth {} above capacity",
            q.peak_depth()
        );
    }

    #[test]
    fn remaining_tracks_occupancy() {
        let q = GlobalQueue::new();
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        assert_eq!(q.remaining(), 2);
        q.dequeue().unwrap();
        assert_eq!(q.remaining(), 1);
        assert!(!q.is_empty());
        q.dequeue().unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn shared_obs_receives_depth_samples_and_capacity() {
        let obs = Arc::new(Obs::wall());
        let q = GlobalQueue::bounded_with_obs(32, Arc::clone(&obs));
        q.enqueue("a").unwrap();
        q.enqueue("b").unwrap();
        q.dequeue().unwrap();
        assert_eq!(obs.metrics.counter("queue.enqueued"), 2.0);
        assert_eq!(obs.metrics.counter("queue.dequeued"), 1.0);
        // One depth sample per enqueue/dequeue.
        assert_eq!(obs.metrics.series_len("queue.depth"), 3);
        assert_eq!(obs.metrics.gauge("queue.depth").unwrap().max, 2.0);
        assert_eq!(obs.metrics.gauge("queue.capacity").unwrap().last, 32.0);
    }

    #[test]
    fn blocking_dequeue_wakes_on_enqueue() {
        let q = Arc::new(GlobalQueue::bounded(4));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.dequeue())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.enqueue(7).unwrap();
        assert_eq!(waiter.join().unwrap(), Ok(7));
        // The consumer blocked and the episode was accounted.
        assert!(q.blocked_ns() > 0, "no blocked time recorded");
    }

    #[test]
    fn blocking_dequeue_wakes_on_close() {
        let q: Arc<GlobalQueue<u32>> = Arc::new(GlobalQueue::bounded(4));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.dequeue())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), Err(DequeueError::Drained));
    }

    #[test]
    fn enqueue_blocks_at_capacity_and_resumes_after_dequeue() {
        let q = Arc::new(GlobalQueue::bounded(2));
        q.enqueue(0).unwrap();
        q.enqueue(1).unwrap();
        let started = Instant::now();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                q.enqueue(2).unwrap();
                started.elapsed()
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(q.remaining(), 2, "producer must not exceed capacity");
        assert_eq!(q.dequeue(), Ok(0));
        let blocked_for = producer.join().unwrap();
        assert!(
            blocked_for >= Duration::from_millis(20),
            "producer should have blocked, returned after {blocked_for:?}"
        );
        assert_eq!(q.remaining(), 2);
        assert_eq!(q.peak_depth(), 2);
        assert!(q.blocked_ns() > 0);
    }

    #[test]
    fn close_rejects_new_enqueues_but_drains_existing() {
        let q = GlobalQueue::bounded(4);
        q.enqueue(1).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.enqueue(2), Err(EnqueueError::Closed));
        assert_eq!(q.dequeue(), Ok(1));
        assert_eq!(q.dequeue(), Err(DequeueError::Drained));
    }

    #[test]
    fn poison_wakes_a_blocked_producer() {
        // Full queue: the producer blocks until the poison arrives.
        let q = Arc::new(GlobalQueue::bounded(1));
        q.enqueue(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.enqueue(1))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.poison("trainer 3 panicked");
        assert_eq!(
            producer.join().unwrap(),
            Err(EnqueueError::Poisoned("trainer 3 panicked".into()))
        );
        assert_eq!(q.poison_reason().as_deref(), Some("trainer 3 panicked"));
        // First poison reason wins.
        q.poison("later");
        assert_eq!(q.poison_reason().as_deref(), Some("trainer 3 panicked"));
    }

    #[test]
    fn poison_wakes_a_blocked_consumer() {
        // Empty queue: the consumer blocks until the poison arrives.
        let q: Arc<GlobalQueue<i32>> = Arc::new(GlobalQueue::bounded(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.dequeue())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.poison("sampler 0 panicked");
        assert_eq!(
            consumer.join().unwrap(),
            Err(DequeueError::Poisoned("sampler 0 panicked".into()))
        );
    }

    #[test]
    fn dequeue_timeout_returns_none_without_producers() {
        let q: GlobalQueue<u8> = GlobalQueue::bounded(1);
        let started = Instant::now();
        assert_eq!(q.dequeue_timeout(Duration::from_millis(30)), Ok(None));
        assert!(started.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let _ = GlobalQueue::<u8>::bounded(0);
    }
}
