//! The host-memory global queue bridging Samplers and Trainers (§5.2).

use crossbeam::queue::SegQueue;
use gnnlab_obs::Obs;
use std::sync::Arc;

/// An unbounded MPMC queue in host memory with occupancy accounting.
///
/// "GNNLab uses a global queue in the host memory to link two kinds of
/// executors asynchronously … The concurrent queue would not be the
/// bottleneck since the updates are infrequent." Samplers enqueue whole
/// mini-batch samples; Trainers (and woken standby Trainers) dequeue them.
/// The remaining-task count feeds the dynamic-switching profit metric
/// (`M_r` in §5.3).
///
/// Occupancy counters live in an observability registry: a queue built
/// with [`GlobalQueue::with_obs`] records a `queue.depth` sample on every
/// enqueue and dequeue (plus `queue.enqueued`/`queue.dequeued` counters);
/// a plain [`GlobalQueue::new`] queue keeps a private registry so the
/// accessors below work either way.
#[derive(Debug)]
pub struct GlobalQueue<T> {
    inner: SegQueue<T>,
    obs: Arc<Obs>,
}

impl<T> Default for GlobalQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> GlobalQueue<T> {
    /// Creates an empty queue with a private (wall-clock) registry.
    pub fn new() -> Self {
        Self::with_obs(Arc::new(Obs::wall()))
    }

    /// Creates an empty queue publishing into a shared observability hub.
    pub fn with_obs(obs: Arc<Obs>) -> Self {
        GlobalQueue {
            inner: SegQueue::new(),
            obs,
        }
    }

    fn note_depth(&self) {
        let depth = self.inner.len() as f64;
        self.obs
            .metrics
            .sample("queue.depth", self.obs.now_ns(), depth);
        self.obs.metrics.gauge_set("queue.depth", depth);
    }

    /// Enqueues a task (Sampler side), recording a depth sample.
    pub fn enqueue(&self, item: T) {
        self.inner.push(item);
        self.obs.metrics.counter_inc("queue.enqueued");
        self.note_depth();
    }

    /// Dequeues a task if available (Trainer side), recording a depth
    /// sample on success.
    pub fn dequeue(&self) -> Option<T> {
        let item = self.inner.pop();
        if item.is_some() {
            self.obs.metrics.counter_inc("queue.dequeued");
            self.note_depth();
        }
        item
    }

    /// Tasks currently waiting (`M_r` for the profit metric).
    pub fn remaining(&self) -> usize {
        self.inner.len()
    }

    /// Total tasks ever enqueued.
    pub fn total_enqueued(&self) -> usize {
        self.obs.metrics.counter("queue.enqueued") as usize
    }

    /// Total tasks ever dequeued.
    pub fn total_dequeued(&self) -> usize {
        self.obs.metrics.counter("queue.dequeued") as usize
    }

    /// Largest queue depth ever sampled.
    pub fn peak_depth(&self) -> usize {
        self.obs
            .metrics
            .gauge("queue.depth")
            .map_or(0, |g| g.max as usize)
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_single_thread() {
        let q = GlobalQueue::new();
        for i in 0..10 {
            q.enqueue(i);
        }
        assert_eq!(q.remaining(), 10);
        for i in 0..10 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert!(q.dequeue().is_none());
        assert_eq!(q.total_enqueued(), 10);
        assert_eq!(q.total_dequeued(), 10);
        assert_eq!(q.peak_depth(), 10);
    }

    #[test]
    fn concurrent_producers_consumers_preserve_items() {
        let q = Arc::new(GlobalQueue::new());
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        q.enqueue(p * 1000 + i);
                    }
                })
            })
            .collect();
        for t in producers {
            t.join().unwrap();
        }
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.dequeue() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), 1000);
        all.dedup();
        assert_eq!(all.len(), 1000, "duplicates or losses detected");
    }

    #[test]
    fn remaining_tracks_occupancy() {
        let q = GlobalQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.remaining(), 2);
        q.dequeue();
        assert_eq!(q.remaining(), 1);
        assert!(!q.is_empty());
        q.dequeue();
        assert!(q.is_empty());
    }

    #[test]
    fn shared_obs_receives_depth_samples() {
        let obs = Arc::new(Obs::wall());
        let q = GlobalQueue::with_obs(Arc::clone(&obs));
        q.enqueue("a");
        q.enqueue("b");
        q.dequeue();
        assert_eq!(obs.metrics.counter("queue.enqueued"), 2.0);
        assert_eq!(obs.metrics.counter("queue.dequeued"), 1.0);
        // One depth sample per enqueue/dequeue.
        assert_eq!(obs.metrics.series_len("queue.depth"), 3);
        assert_eq!(obs.metrics.gauge("queue.depth").unwrap().max, 2.0);
    }
}
