//! The host-memory global queue bridging Samplers and Trainers (§5.2).

use crossbeam::queue::SegQueue;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An unbounded MPMC queue in host memory with occupancy counters.
///
/// "GNNLab uses a global queue in the host memory to link two kinds of
/// executors asynchronously … The concurrent queue would not be the
/// bottleneck since the updates are infrequent." Samplers enqueue whole
/// mini-batch samples; Trainers (and woken standby Trainers) dequeue them.
/// The remaining-task count feeds the dynamic-switching profit metric
/// (`M_r` in §5.3).
#[derive(Debug)]
pub struct GlobalQueue<T> {
    inner: SegQueue<T>,
    enqueued: AtomicUsize,
    dequeued: AtomicUsize,
}

impl<T> Default for GlobalQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> GlobalQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        GlobalQueue {
            inner: SegQueue::new(),
            enqueued: AtomicUsize::new(0),
            dequeued: AtomicUsize::new(0),
        }
    }

    /// Enqueues a task (Sampler side).
    pub fn enqueue(&self, item: T) {
        self.inner.push(item);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
    }

    /// Dequeues a task if available (Trainer side).
    pub fn dequeue(&self) -> Option<T> {
        let item = self.inner.pop();
        if item.is_some() {
            self.dequeued.fetch_add(1, Ordering::Relaxed);
        }
        item
    }

    /// Tasks currently waiting (`M_r` for the profit metric).
    pub fn remaining(&self) -> usize {
        self.inner.len()
    }

    /// Total tasks ever enqueued.
    pub fn total_enqueued(&self) -> usize {
        self.enqueued.load(Ordering::Relaxed)
    }

    /// Total tasks ever dequeued.
    pub fn total_dequeued(&self) -> usize {
        self.dequeued.load(Ordering::Relaxed)
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = GlobalQueue::new();
        for i in 0..10 {
            q.enqueue(i);
        }
        assert_eq!(q.remaining(), 10);
        for i in 0..10 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert!(q.dequeue().is_none());
        assert_eq!(q.total_enqueued(), 10);
        assert_eq!(q.total_dequeued(), 10);
    }

    #[test]
    fn concurrent_producers_consumers_preserve_items() {
        let q = Arc::new(GlobalQueue::new());
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        q.enqueue(p * 1000 + i);
                    }
                })
            })
            .collect();
        for t in producers {
            t.join().unwrap();
        }
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.dequeue() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), 1000);
        all.dedup();
        assert_eq!(all.len(), 1000, "duplicates or losses detected");
    }

    #[test]
    fn remaining_tracks_occupancy() {
        let q = GlobalQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.remaining(), 2);
        q.dequeue();
        assert_eq!(q.remaining(), 1);
        assert!(!q.is_empty());
        q.dequeue();
        assert!(q.is_empty());
    }
}
