//! The four systems compared in the evaluation (§7.1, Table 3 bottom).

use gnnlab_sampling::Kernel;
use gnnlab_sim::{GatherPath, SampleDevice};

/// Which GNN system design to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// PyG: CPU sampling, CPU feature gather, no cache, time-sharing.
    PygLike,
    /// DGL: GPU sampling (Reservoir kernel, Python-driven), CPU gather,
    /// no cache, time-sharing.
    DglLike,
    /// T_SOTA: GPU sampling (Fisher–Yates), GPU-direct gather, degree-based
    /// cache, time-sharing — the paper's strengthened baseline.
    TSota,
    /// GNNLab: the factored space-sharing design with PreSC caching.
    GnnLab,
}

impl SystemKind {
    /// All four systems in the paper's presentation order.
    pub const ALL: [SystemKind; 4] = [
        SystemKind::PygLike,
        SystemKind::DglLike,
        SystemKind::TSota,
        SystemKind::GnnLab,
    ];

    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::PygLike => "PyG",
            SystemKind::DglLike => "DGL",
            SystemKind::TSota => "T_SOTA",
            SystemKind::GnnLab => "GNNLab",
        }
    }

    /// Where this system runs graph sampling.
    pub fn sample_device(&self) -> SampleDevice {
        match self {
            SystemKind::PygLike => SampleDevice::CpuPyg,
            SystemKind::DglLike => SampleDevice::GpuFromPython,
            SystemKind::TSota | SystemKind::GnnLab => SampleDevice::Gpu,
        }
    }

    /// Which uniform-selection kernel this system's sampler uses (§7.3).
    pub fn kernel(&self) -> Kernel {
        match self {
            SystemKind::DglLike => Kernel::Reservoir,
            _ => Kernel::FisherYates,
        }
    }

    /// Which path gathers features during Extract.
    pub fn gather_path(&self) -> GatherPath {
        match self {
            SystemKind::PygLike | SystemKind::DglLike => GatherPath::CpuGather,
            SystemKind::TSota | SystemKind::GnnLab => GatherPath::GpuDirect,
        }
    }

    /// Whether this system caches features in GPU memory.
    pub fn has_cache(&self) -> bool {
        matches!(self, SystemKind::TSota | SystemKind::GnnLab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_system_properties() {
        assert_eq!(SystemKind::PygLike.sample_device(), SampleDevice::CpuPyg);
        assert!(!SystemKind::PygLike.has_cache());
        assert_eq!(SystemKind::DglLike.kernel(), Kernel::Reservoir);
        assert_eq!(SystemKind::DglLike.gather_path(), GatherPath::CpuGather);
        assert_eq!(SystemKind::TSota.kernel(), Kernel::FisherYates);
        assert!(SystemKind::TSota.has_cache());
        assert_eq!(SystemKind::GnnLab.gather_path(), GatherPath::GpuDirect);
        assert_eq!(SystemKind::ALL.len(), 4);
    }
}
