//! Durable, crash-safe checkpoint/resume for the threaded runtime.
//!
//! A checkpoint captures everything a killed training process needs to
//! continue as if it had never stopped: model parameters, the Adam
//! optimizer's moment accumulators and step counter, the global batch
//! cursor, the scheduler's live EWMA estimates and switch count, the
//! per-role cache-plan fingerprint, the RNG stream position (the
//! `(seed, epoch, batch)` domain tags shared with
//! `sampling::presample_rng` — batch sampling is a pure function of
//! batch identity, so the "RNG position" is exactly the batch cursor),
//! the cumulative [`RecoveryReport`], and the per-batch training
//! history.
//!
//! # On-disk format
//!
//! ```text
//! ckpt-<generation>.bin :=
//!     magic  b"GLABCKPT"            (8 bytes)
//!     version u32-le                (currently 1)
//!     section_count u32-le
//!     section*                      (exactly section_count of them)
//! section :=
//!     tag     [u8;4]                (META MODL OPTS SCHD RNGS RCVR HIST)
//!     len     u64-le                (payload bytes)
//!     payload [u8; len]
//!     crc32   u32-le                (CRC-32/IEEE over payload only)
//! ```
//!
//! Writes are atomic and torn-write-safe: the file is fully assembled in
//! memory, written to `ckpt-<gen>.bin.tmp`, fsynced, renamed into place,
//! and the directory is fsynced; only then is the plain-text `MANIFEST`
//! (itself rewritten atomically) updated to list the new generation. A
//! kill at *any* point leaves either the previous manifest (pointing at
//! the previous good generation) or the new one — never a manifest entry
//! for a torn file. [`load_latest`] walks the manifest newest-first,
//! rejects any file whose magic/version/structure/CRC fails, counts torn
//! leftovers (stray `.tmp` files, corrupt or truncated generations), and
//! falls back to the newest generation that validates end to end.

use crate::threaded::RecoveryReport;
use gnnlab_tensor::{AdamState, Matrix, ModelKind};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// File magic for checkpoint files.
pub const MAGIC: &[u8; 8] = b"GLABCKPT";
/// Current checkpoint format version.
pub const VERSION: u32 = 1;
/// Generations retained on disk when the policy does not say otherwise.
pub const DEFAULT_KEEP: usize = 3;
/// Name of the plain-text manifest file inside the checkpoint directory.
pub const MANIFEST: &str = "MANIFEST";
const MANIFEST_HEADER: &str = "gnnlab-ckpt-manifest v1";

// ---------------------------------------------------------------------------
// Policy
// ---------------------------------------------------------------------------

/// When (and where) the threaded runtime writes checkpoints.
///
/// A default-constructed policy (`dir: None`) disables checkpointing
/// entirely and the runtime behaves exactly as before. With a directory
/// set but no explicit cadence, checkpoints land on epoch boundaries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointPolicy {
    /// Checkpoint directory; `None` disables checkpointing.
    pub dir: Option<PathBuf>,
    /// Checkpoint every N trained batches.
    pub every_batches: Option<usize>,
    /// Checkpoint whenever this much wall time has passed since the last
    /// write (checked after each trained batch).
    pub every_secs: Option<f64>,
    /// Checkpoint at epoch boundaries (the default cadence when a
    /// directory is set and nothing else is).
    pub epoch_boundaries: bool,
    /// Resume from the latest valid generation in `dir` before training.
    /// An empty or fully-corrupt directory starts fresh.
    pub resume: bool,
    /// Generations kept on disk (older ones are pruned after each
    /// successful write). `0` means [`DEFAULT_KEEP`].
    pub keep: usize,
    /// Deterministic chaos injection for the kill–resume harness.
    pub chaos: ChaosPlan,
}

impl CheckpointPolicy {
    /// A policy writing to `dir` with the default epoch-boundary cadence.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        CheckpointPolicy {
            dir: Some(dir.into()),
            ..Self::default()
        }
    }

    /// Whether checkpointing is enabled at all.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// How many generations to retain on disk.
    pub fn effective_keep(&self) -> usize {
        if self.keep == 0 {
            DEFAULT_KEEP
        } else {
            self.keep.max(2)
        }
    }

    /// The batch-count cadence, if any: an explicit `every_batches` wins,
    /// otherwise epoch boundaries (also the default when only a time
    /// cadence is absent).
    pub fn batch_cadence(&self, batches_per_epoch: usize) -> Option<usize> {
        if let Some(n) = self.every_batches {
            return Some(n.max(1));
        }
        if self.epoch_boundaries || self.every_secs.is_none() {
            return Some(batches_per_epoch.max(1));
        }
        None
    }
}

/// Seeded chaos injection: simulated process kills and a slow disk, all
/// deterministic so the kill–resume harness can replay them exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChaosPlan {
    /// Simulate a process kill once this many batches have trained: the
    /// run aborts with a `Killed` error, losing all in-memory state. Only
    /// the checkpoint directory survives — exactly like a real `SIGKILL`.
    pub kill_after_batches: Option<usize>,
    /// Simulate a process kill midway through writing this checkpoint
    /// generation: a torn `.tmp` file is left behind and the run aborts.
    pub kill_mid_write: Option<u64>,
    /// Injected slow disk: every checkpoint write sleeps this long first
    /// (drives the `checkpoint_stall` alert in tests).
    pub slow_disk: Option<Duration>,
}

// ---------------------------------------------------------------------------
// State
// ---------------------------------------------------------------------------

/// Identity of the run a checkpoint belongs to. Resume refuses to load a
/// checkpoint whose meta does not match the live configuration — silently
/// mixing runs would corrupt training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Base RNG seed for every derived stream.
    pub seed: u64,
    /// Total epochs configured.
    pub epochs: u64,
    /// Minibatch size.
    pub batch_size: u64,
    /// Model hidden dimension.
    pub hidden_dim: u64,
    /// Learning-rate bits (exact f32 identity, not approximate equality).
    pub lr_bits: u32,
    /// Model architecture.
    pub model_kind: ModelKind,
    /// Graph vertex count.
    pub num_vertices: u64,
    /// Graph edge count.
    pub num_edges: u64,
    /// Feature width.
    pub feat_dim: u64,
    /// Label classes.
    pub num_classes: u64,
    /// Batches per epoch.
    pub batches_per_epoch: u64,
    /// Total batches in the run.
    pub total_batches: u64,
    /// Configured Sampler count.
    pub num_samplers: u64,
    /// Configured Trainer count.
    pub num_trainers: u64,
    /// Whether §5.3 dynamic switching was on.
    pub dynamic_switching: bool,
    /// Memory-planned trainer cache rows (cache-plan fingerprint).
    pub trainer_rows: u64,
    /// Memory-planned standby cache rows (cache-plan fingerprint).
    pub standby_rows: u64,
}

/// The scheduler's live state: EWMA cells (bit-exact, `None` = never
/// updated) plus the cumulative switch count.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SchedSnapshot {
    /// EWMA of per-batch sampling seconds.
    pub t_sample: Option<f64>,
    /// EWMA of per-batch training seconds on a dedicated Trainer.
    pub t_train: Option<f64>,
    /// EWMA of per-batch training seconds on a standby Trainer.
    pub t_standby: Option<f64>,
    /// EWMA of cache refresh seconds.
    pub refresh_secs: Option<f64>,
    /// Completed Sampler→Trainer switches.
    pub switches: u64,
}

/// The RNG stream position: with per-batch domain-tagged streams
/// (`presample_rng(seed, epoch, batch)`), "position" is just the next
/// batch's identity. Stored explicitly (rather than derived from the
/// cursor) as an integrity cross-check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngCursor {
    /// Base seed of every derived stream.
    pub seed: u64,
    /// Epoch of the next batch to sample.
    pub next_epoch: u64,
    /// Within-epoch index of the next batch to sample.
    pub next_batch: u64,
}

/// One trained batch's record: the exactly-once history the chaos
/// harness holds to bit-identity across kill–resume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchRecord {
    /// Global batch index.
    pub id: u64,
    /// Training loss for this batch.
    pub loss: f32,
    /// Training accuracy for this batch.
    pub acc: f64,
}

/// Everything a checkpoint persists.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// Run identity (validated against the live config on resume).
    pub meta: CheckpointMeta,
    /// Master model parameter values, in `params_mut()` order.
    pub params: Vec<Matrix>,
    /// Full Adam state (step counter + both moment accumulators).
    pub opt: AdamState,
    /// Scheduler EWMAs + switch count.
    pub sched: SchedSnapshot,
    /// RNG stream position of the next batch.
    pub rng: RngCursor,
    /// Batches fully trained — the trained set is exactly `[0, cursor)`.
    pub cursor: u64,
    /// Cumulative fault-recovery accounting.
    pub recovery: RecoveryReport,
    /// Per-batch training history for `[0, cursor)`, sorted by id.
    pub history: Vec<BatchRecord>,
}

/// What [`load_latest`] found.
#[derive(Debug)]
pub struct LoadOutcome {
    /// The newest generation that validated end to end, if any.
    pub loaded: Option<(u64, CheckpointState)>,
    /// Torn or corrupt artifacts skipped on the way: stray `.tmp` files
    /// plus generations that failed magic/version/structure/CRC checks.
    pub torn_detected: u64,
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a checkpoint operation failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The file failed a structural or checksum validation.
    Corrupt(String),
    /// A valid checkpoint belongs to a different run configuration.
    Incompatible(String),
    /// A chaos kill-point fired midway through the write.
    KilledMidWrite,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            CheckpointError::Incompatible(why) => write!(f, "incompatible checkpoint: {why}"),
            CheckpointError::KilledMidWrite => {
                write!(f, "simulated kill during checkpoint write")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn corrupt(why: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt(why.into())
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, the zlib/PNG polynomial) — implemented here so the
// checkpoint format stays dependency-free.
// ---------------------------------------------------------------------------

/// CRC-32/IEEE over `data` (poly 0xEDB88320, init/final 0xFFFFFFFF).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// Little-endian encode/decode helpers
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f32_bits(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn opt_f64_bits(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x.to_bits());
            }
            None => {
                self.u8(0);
                self.u64(0);
            }
        }
    }
    fn matrix(&mut self, m: &Matrix) {
        self.u64(m.rows() as u64);
        self.u64(m.cols() as u64);
        for &x in m.data() {
            self.f32_bits(x);
        }
    }
    fn matrices(&mut self, ms: &[Matrix]) {
        self.u64(ms.len() as u64);
        for m in ms {
            self.matrix(m);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("section payload truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(gnnlab_par::invariant!(
            self.take(4)?.try_into(),
            "take(4) yields exactly four bytes"
        )))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(gnnlab_par::invariant!(
            self.take(8)?.try_into(),
            "take(8) yields exactly eight bytes"
        )))
    }
    fn f32_bits(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn opt_f64_bits(&mut self) -> Result<Option<f64>, CheckpointError> {
        let flag = self.u8()?;
        let bits = self.u64()?;
        Ok(if flag == 1 {
            Some(f64::from_bits(bits))
        } else {
            None
        })
    }
    fn usize_checked(&mut self, what: &str, cap: usize) -> Result<usize, CheckpointError> {
        let v = self.u64()?;
        let v = usize::try_from(v).map_err(|_| corrupt(format!("{what} overflows usize")))?;
        if v > cap {
            return Err(corrupt(format!("{what} {v} exceeds sanity cap {cap}")));
        }
        Ok(v)
    }
    fn matrix(&mut self) -> Result<Matrix, CheckpointError> {
        let rows = self.usize_checked("matrix rows", 1 << 28)?;
        let cols = self.usize_checked("matrix cols", 1 << 28)?;
        let n = rows
            .checked_mul(cols)
            .filter(|&n| n <= self.buf.len() / 4 + 1)
            .ok_or_else(|| corrupt("matrix larger than its section"))?;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.f32_bits()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }
    fn matrices(&mut self) -> Result<Vec<Matrix>, CheckpointError> {
        let n = self.usize_checked("matrix count", 1 << 20)?;
        (0..n).map(|_| self.matrix()).collect()
    }
    fn finished(&self) -> Result<(), CheckpointError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(corrupt("trailing bytes after section payload"))
        }
    }
}

// ---------------------------------------------------------------------------
// Section (de)serialization
// ---------------------------------------------------------------------------

const TAG_META: [u8; 4] = *b"META";
const TAG_MODEL: [u8; 4] = *b"MODL";
const TAG_OPT: [u8; 4] = *b"OPTS";
const TAG_SCHED: [u8; 4] = *b"SCHD";
const TAG_RNG: [u8; 4] = *b"RNGS";
const TAG_RECOVERY: [u8; 4] = *b"RCVR";
const TAG_HISTORY: [u8; 4] = *b"HIST";

fn model_kind_code(kind: ModelKind) -> u8 {
    match kind {
        ModelKind::Gcn => 0,
        ModelKind::GraphSage => 1,
        ModelKind::PinSage => 2,
    }
}

fn model_kind_from_code(code: u8) -> Result<ModelKind, CheckpointError> {
    match code {
        0 => Ok(ModelKind::Gcn),
        1 => Ok(ModelKind::GraphSage),
        2 => Ok(ModelKind::PinSage),
        other => Err(corrupt(format!("unknown model kind code {other}"))),
    }
}

fn encode_meta(m: &CheckpointMeta, cursor: u64, generation: u64) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(m.seed);
    e.u64(m.epochs);
    e.u64(m.batch_size);
    e.u64(m.hidden_dim);
    e.u32(m.lr_bits);
    e.u8(model_kind_code(m.model_kind));
    e.u64(m.num_vertices);
    e.u64(m.num_edges);
    e.u64(m.feat_dim);
    e.u64(m.num_classes);
    e.u64(m.batches_per_epoch);
    e.u64(m.total_batches);
    e.u64(m.num_samplers);
    e.u64(m.num_trainers);
    e.u8(u8::from(m.dynamic_switching));
    e.u64(m.trainer_rows);
    e.u64(m.standby_rows);
    e.u64(cursor);
    e.u64(generation);
    e.0
}

fn decode_meta(buf: &[u8]) -> Result<(CheckpointMeta, u64, u64), CheckpointError> {
    let mut d = Dec::new(buf);
    let meta = CheckpointMeta {
        seed: d.u64()?,
        epochs: d.u64()?,
        batch_size: d.u64()?,
        hidden_dim: d.u64()?,
        lr_bits: d.u32()?,
        model_kind: model_kind_from_code(d.u8()?)?,
        num_vertices: d.u64()?,
        num_edges: d.u64()?,
        feat_dim: d.u64()?,
        num_classes: d.u64()?,
        batches_per_epoch: d.u64()?,
        total_batches: d.u64()?,
        num_samplers: d.u64()?,
        num_trainers: d.u64()?,
        dynamic_switching: d.u8()? == 1,
        trainer_rows: d.u64()?,
        standby_rows: d.u64()?,
    };
    let cursor = d.u64()?;
    let generation = d.u64()?;
    d.finished()?;
    Ok((meta, cursor, generation))
}

fn encode_opt(s: &AdamState) -> Vec<u8> {
    let mut e = Enc::default();
    e.f32_bits(s.lr);
    e.f32_bits(s.beta1);
    e.f32_bits(s.beta2);
    e.f32_bits(s.eps);
    e.u64(s.t as u64);
    e.matrices(&s.m);
    e.matrices(&s.v);
    e.0
}

fn decode_opt(buf: &[u8]) -> Result<AdamState, CheckpointError> {
    let mut d = Dec::new(buf);
    let state = AdamState {
        lr: d.f32_bits()?,
        beta1: d.f32_bits()?,
        beta2: d.f32_bits()?,
        eps: d.f32_bits()?,
        t: i32::try_from(d.u64()? as i64).map_err(|_| corrupt("adam step counter overflow"))?,
        m: d.matrices()?,
        v: d.matrices()?,
    };
    d.finished()?;
    Ok(state)
}

fn encode_sched(s: &SchedSnapshot) -> Vec<u8> {
    let mut e = Enc::default();
    e.opt_f64_bits(s.t_sample);
    e.opt_f64_bits(s.t_train);
    e.opt_f64_bits(s.t_standby);
    e.opt_f64_bits(s.refresh_secs);
    e.u64(s.switches);
    e.0
}

fn decode_sched(buf: &[u8]) -> Result<SchedSnapshot, CheckpointError> {
    let mut d = Dec::new(buf);
    let s = SchedSnapshot {
        t_sample: d.opt_f64_bits()?,
        t_train: d.opt_f64_bits()?,
        t_standby: d.opt_f64_bits()?,
        refresh_secs: d.opt_f64_bits()?,
        switches: d.u64()?,
    };
    d.finished()?;
    Ok(s)
}

fn encode_rng(r: &RngCursor) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(r.seed);
    e.u64(r.next_epoch);
    e.u64(r.next_batch);
    e.0
}

fn decode_rng(buf: &[u8]) -> Result<RngCursor, CheckpointError> {
    let mut d = Dec::new(buf);
    let r = RngCursor {
        seed: d.u64()?,
        next_epoch: d.u64()?,
        next_batch: d.u64()?,
    };
    d.finished()?;
    Ok(r)
}

fn encode_recovery(r: &RecoveryReport) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(r.faults_injected as u64);
    e.u64(r.replayed_batches as u64);
    e.u64(r.respawns as u64);
    e.u64(r.reassignments as u64);
    e.u64(r.retries as u64);
    e.u64(r.downtime_ns);
    e.0
}

fn decode_recovery(buf: &[u8]) -> Result<RecoveryReport, CheckpointError> {
    let mut d = Dec::new(buf);
    let cap = 1usize << 40;
    let r = RecoveryReport {
        faults_injected: d.usize_checked("faults_injected", cap)?,
        replayed_batches: d.usize_checked("replayed_batches", cap)?,
        respawns: d.usize_checked("respawns", cap)?,
        reassignments: d.usize_checked("reassignments", cap)?,
        retries: d.usize_checked("retries", cap)?,
        downtime_ns: d.u64()?,
    };
    d.finished()?;
    Ok(r)
}

fn encode_history(h: &[BatchRecord]) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(h.len() as u64);
    for r in h {
        e.u64(r.id);
        e.u32(r.loss.to_bits());
        e.u64(r.acc.to_bits());
    }
    e.0
}

fn decode_history(buf: &[u8]) -> Result<Vec<BatchRecord>, CheckpointError> {
    let mut d = Dec::new(buf);
    let n = d.usize_checked("history length", buf.len() / 20 + 1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(BatchRecord {
            id: d.u64()?,
            loss: f32::from_bits(d.u32()?),
            acc: f64::from_bits(d.u64()?),
        });
    }
    d.finished()?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Whole-file assembly and parsing
// ---------------------------------------------------------------------------

fn push_section(out: &mut Vec<u8>, tag: [u8; 4], payload: &[u8]) {
    out.extend_from_slice(&tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Serializes `state` (plus its generation number) into the on-disk byte
/// layout, CRCs and all.
pub fn encode(state: &CheckpointState, generation: u64) -> Vec<u8> {
    let sections: Vec<([u8; 4], Vec<u8>)> = vec![
        (TAG_META, encode_meta(&state.meta, state.cursor, generation)),
        (TAG_MODEL, {
            let mut e = Enc::default();
            e.matrices(&state.params);
            e.0
        }),
        (TAG_OPT, encode_opt(&state.opt)),
        (TAG_SCHED, encode_sched(&state.sched)),
        (TAG_RNG, encode_rng(&state.rng)),
        (TAG_RECOVERY, encode_recovery(&state.recovery)),
        (TAG_HISTORY, encode_history(&state.history)),
    ];
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (tag, payload) in &sections {
        push_section(&mut out, *tag, payload);
    }
    out
}

/// Parses and fully validates one checkpoint image: magic, version,
/// section structure, per-section CRC, each section's internal layout,
/// and the RNG-cursor/batch-cursor cross-check.
pub fn decode(bytes: &[u8]) -> Result<(CheckpointState, u64), CheckpointError> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(corrupt("file shorter than header"));
    }
    if &bytes[..8] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let mut d = Dec::new(&bytes[8..]);
    let version = d.u32()?;
    if version != VERSION {
        return Err(corrupt(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    let section_count = d.u32()?;
    let mut meta = None;
    let mut params = None;
    let mut opt = None;
    let mut sched = None;
    let mut rng = None;
    let mut recovery = None;
    let mut history = None;
    for _ in 0..section_count {
        let tag: [u8; 4] =
            gnnlab_par::invariant!(d.take(4)?.try_into(), "take(4) yields exactly four bytes");
        let len = d.usize_checked("section length", bytes.len())?;
        let payload = d.take(len)?;
        let stored_crc = d.u32()?;
        let actual = crc32(payload);
        if stored_crc != actual {
            return Err(corrupt(format!(
                "crc mismatch in section {:?} (stored {stored_crc:08x}, actual {actual:08x})",
                String::from_utf8_lossy(&tag)
            )));
        }
        match tag {
            TAG_META => meta = Some(decode_meta(payload)?),
            TAG_MODEL => {
                let mut pd = Dec::new(payload);
                let ms = pd.matrices()?;
                pd.finished()?;
                params = Some(ms);
            }
            TAG_OPT => opt = Some(decode_opt(payload)?),
            TAG_SCHED => sched = Some(decode_sched(payload)?),
            TAG_RNG => rng = Some(decode_rng(payload)?),
            TAG_RECOVERY => recovery = Some(decode_recovery(payload)?),
            TAG_HISTORY => history = Some(decode_history(payload)?),
            other => {
                return Err(corrupt(format!(
                    "unknown section tag {:?}",
                    String::from_utf8_lossy(&other)
                )))
            }
        }
    }
    d.finished()?;
    let (meta, cursor, generation) = meta.ok_or_else(|| corrupt("missing META section"))?;
    let state = CheckpointState {
        meta,
        params: params.ok_or_else(|| corrupt("missing MODL section"))?,
        opt: opt.ok_or_else(|| corrupt("missing OPTS section"))?,
        sched: sched.ok_or_else(|| corrupt("missing SCHD section"))?,
        rng: rng.ok_or_else(|| corrupt("missing RNGS section"))?,
        recovery: recovery.ok_or_else(|| corrupt("missing RCVR section"))?,
        history: history.ok_or_else(|| corrupt("missing HIST section"))?,
        cursor,
    };
    // Cross-check: the RNG position must agree with the batch cursor.
    let bpe = state.meta.batches_per_epoch.max(1);
    let expect = RngCursor {
        seed: state.meta.seed,
        next_epoch: state.cursor / bpe,
        next_batch: state.cursor % bpe,
    };
    if state.rng != expect {
        return Err(corrupt(format!(
            "rng cursor {:?} disagrees with batch cursor {}",
            state.rng, state.cursor
        )));
    }
    if state.history.len() as u64 != state.cursor {
        return Err(corrupt(format!(
            "history has {} records but cursor is {}",
            state.history.len(),
            state.cursor
        )));
    }
    Ok((state, generation))
}

// ---------------------------------------------------------------------------
// Filesystem: atomic write, manifest, latest-valid selection
// ---------------------------------------------------------------------------

fn generation_filename(generation: u64) -> String {
    format!("ckpt-{generation:08}.bin")
}

fn parse_generation(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

fn write_manifest(dir: &Path, generations: &[u64]) -> Result<(), CheckpointError> {
    let mut text = String::from(MANIFEST_HEADER);
    text.push('\n');
    for g in generations {
        text.push_str(&format!("{g} {}\n", generation_filename(*g)));
    }
    let tmp = dir.join(format!("{MANIFEST}.tmp"));
    let mut f = fs::File::create(&tmp)?;
    f.write_all(text.as_bytes())?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, dir.join(MANIFEST))?;
    fsync_dir(dir)?;
    Ok(())
}

fn read_manifest(dir: &Path) -> Option<Vec<u64>> {
    let text = fs::read_to_string(dir.join(MANIFEST)).ok()?;
    let mut lines = text.lines();
    if lines.next()? != MANIFEST_HEADER {
        return None;
    }
    let mut gens = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (gen, name) = line.split_once(' ')?;
        let g: u64 = gen.parse().ok()?;
        if name != generation_filename(g) {
            return None;
        }
        gens.push(g);
    }
    Some(gens)
}

/// Generations currently listed on disk, newest first: the manifest when
/// it parses, otherwise a directory scan (a torn manifest must never
/// strand otherwise-valid checkpoints).
fn listed_generations(dir: &Path) -> Vec<u64> {
    let mut gens = read_manifest(dir).unwrap_or_else(|| scan_generations(dir));
    gens.sort_unstable();
    gens.dedup();
    gens.reverse();
    gens
}

fn scan_generations(dir: &Path) -> Vec<u64> {
    let mut gens = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Some(g) = entry.file_name().to_str().and_then(parse_generation) {
                gens.push(g);
            }
        }
    }
    gens
}

fn count_stray_tmp(dir: &Path) -> u64 {
    let mut n = 0;
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Some(name) = entry.file_name().to_str() {
                if name.ends_with(".bin.tmp") {
                    n += 1;
                }
            }
        }
    }
    n
}

/// Atomically writes `state` as generation `generation` into `dir`,
/// returning the encoded byte count. The sequence is: assemble in
/// memory → write `ckpt-<gen>.bin.tmp` → fsync → rename → fsync dir →
/// prune generations beyond `keep` → rewrite `MANIFEST` atomically.
///
/// `chaos.kill_mid_write == Some(generation)` aborts after writing half
/// the temp file (no rename): the torn `.tmp` stays behind, exactly what
/// a power cut mid-write leaves.
pub fn write_generation(
    dir: &Path,
    generation: u64,
    state: &CheckpointState,
    keep: usize,
    chaos: &ChaosPlan,
) -> Result<u64, CheckpointError> {
    fs::create_dir_all(dir)?;
    if let Some(pause) = chaos.slow_disk {
        std::thread::sleep(pause);
    }
    let bytes = encode(state, generation);
    let final_path = dir.join(generation_filename(generation));
    let tmp_path = dir.join(format!("{}.tmp", generation_filename(generation)));
    if chaos.kill_mid_write == Some(generation) {
        let torn = &bytes[..bytes.len() / 2];
        let mut f = fs::File::create(&tmp_path)?;
        f.write_all(torn)?;
        f.sync_all()?;
        return Err(CheckpointError::KilledMidWrite);
    }
    let mut f = fs::File::create(&tmp_path)?;
    f.write_all(&bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp_path, &final_path)?;
    fsync_dir(dir)?;
    // Prune, then publish the survivors in the manifest.
    let mut gens = scan_generations(dir);
    gens.sort_unstable();
    let keep = keep.max(1);
    while gens.len() > keep {
        let old = gens.remove(0);
        let _ = fs::remove_file(dir.join(generation_filename(old)));
    }
    write_manifest(dir, &gens)?;
    Ok(bytes.len() as u64)
}

/// Selects and loads the newest valid generation in `dir`.
///
/// Walks the manifest (or, if the manifest is missing or torn, a
/// directory scan) newest-first, validating each candidate end to end;
/// corrupt or truncated generations and stray `.tmp` files are counted
/// in [`LoadOutcome::torn_detected`] and skipped, falling back to the
/// previous generation. A missing or empty directory yields
/// `loaded: None` — the caller starts fresh.
pub fn load_latest(dir: &Path) -> LoadOutcome {
    let mut torn = count_stray_tmp(dir);
    let mut loaded = None;
    for generation in listed_generations(dir) {
        match fs::read(dir.join(generation_filename(generation))) {
            Ok(bytes) => match decode(&bytes) {
                Ok((state, stored_gen)) if stored_gen == generation => {
                    loaded = Some((generation, state));
                    break;
                }
                Ok(_) | Err(_) => torn += 1,
            },
            Err(_) => torn += 1,
        }
    }
    LoadOutcome {
        loaded,
        torn_detected: torn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gnnlab-ckpt-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_state(cursor: u64) -> CheckpointState {
        let bpe = 4;
        CheckpointState {
            meta: CheckpointMeta {
                seed: 42,
                epochs: 3,
                batch_size: 8,
                hidden_dim: 16,
                lr_bits: 0.01f32.to_bits(),
                model_kind: ModelKind::GraphSage,
                num_vertices: 100,
                num_edges: 900,
                feat_dim: 8,
                num_classes: 4,
                batches_per_epoch: bpe,
                total_batches: bpe * 3,
                num_samplers: 1,
                num_trainers: 1,
                dynamic_switching: false,
                trainer_rows: 10,
                standby_rows: 5,
            },
            params: vec![
                Matrix::from_vec(2, 3, vec![1.0, -2.5, 0.0, 3.25, f32::MIN_POSITIVE, 9.0]),
                Matrix::from_vec(1, 2, vec![0.5, -0.5]),
            ],
            opt: AdamState {
                lr: 0.01,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                t: 7,
                m: vec![Matrix::from_vec(2, 3, vec![0.1; 6])],
                v: vec![Matrix::from_vec(2, 3, vec![0.2; 6])],
            },
            sched: SchedSnapshot {
                t_sample: Some(0.0025),
                t_train: Some(0.004),
                t_standby: None,
                refresh_secs: Some(0.5),
                switches: 2,
            },
            rng: RngCursor {
                seed: 42,
                next_epoch: cursor / bpe,
                next_batch: cursor % bpe,
            },
            cursor,
            recovery: RecoveryReport {
                faults_injected: 1,
                replayed_batches: 1,
                respawns: 1,
                reassignments: 0,
                retries: 3,
                downtime_ns: 12345,
            },
            history: (0..cursor)
                .map(|id| BatchRecord {
                    id,
                    loss: 1.0 / (id + 1) as f32,
                    acc: 0.5 + id as f64 * 0.01,
                })
                .collect(),
        }
    }

    #[test]
    fn encode_decode_roundtrip_is_exact() {
        let state = sample_state(6);
        let bytes = encode(&state, 3);
        let (decoded, generation) = decode(&bytes).expect("valid image decodes");
        assert_eq!(generation, 3);
        assert_eq!(decoded, state);
    }

    #[test]
    fn every_flipped_byte_in_a_payload_is_rejected() {
        let state = sample_state(4);
        let bytes = encode(&state, 0);
        // Flip a sampling of single bytes across the whole image: each
        // must fail either the CRC, the magic, or a structural check —
        // never decode to a different state silently.
        for pos in (0..bytes.len()).step_by(7) {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0x40;
            match decode(&corrupted) {
                Err(_) => {}
                Ok((other, g)) => assert!(
                    other == state && g == 0,
                    "byte {pos} changed the decoded state without detection"
                ),
            }
        }
    }

    #[test]
    fn write_then_load_latest_roundtrips() {
        let dir = test_dir("roundtrip");
        let state = sample_state(8);
        let bytes = write_generation(&dir, 1, &state, 3, &ChaosPlan::default()).unwrap();
        assert!(bytes > 0);
        let outcome = load_latest(&dir);
        assert_eq!(outcome.torn_detected, 0);
        let (generation, loaded) = outcome.loaded.expect("checkpoint loads");
        assert_eq!(generation, 1);
        assert_eq!(loaded, state);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous_generation() {
        let dir = test_dir("fallback");
        let older = sample_state(4);
        let newer = sample_state(8);
        write_generation(&dir, 1, &older, 3, &ChaosPlan::default()).unwrap();
        write_generation(&dir, 2, &newer, 3, &ChaosPlan::default()).unwrap();
        // Flip one byte in the newest file.
        let path = dir.join(generation_filename(2));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, bytes).unwrap();
        let outcome = load_latest(&dir);
        assert_eq!(outcome.torn_detected, 1, "the corrupt file is counted");
        let (generation, loaded) = outcome.loaded.expect("previous generation survives");
        assert_eq!(generation, 1);
        assert_eq!(loaded, older);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_write_kill_leaves_a_torn_tmp_and_previous_generation_wins() {
        let dir = test_dir("midwrite");
        let older = sample_state(4);
        write_generation(&dir, 1, &older, 3, &ChaosPlan::default()).unwrap();
        let chaos = ChaosPlan {
            kill_mid_write: Some(2),
            ..ChaosPlan::default()
        };
        let err = write_generation(&dir, 2, &sample_state(8), 3, &chaos).unwrap_err();
        assert!(matches!(err, CheckpointError::KilledMidWrite));
        assert!(
            dir.join("ckpt-00000002.bin.tmp").exists(),
            "the torn temp file stays behind"
        );
        let outcome = load_latest(&dir);
        assert_eq!(outcome.torn_detected, 1, "the stray tmp is counted");
        let (generation, loaded) = outcome.loaded.expect("generation 1 still loads");
        assert_eq!(generation, 1);
        assert_eq!(loaded, older);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_falls_back_to_directory_scan() {
        let dir = test_dir("noscan");
        let state = sample_state(4);
        write_generation(&dir, 5, &state, 3, &ChaosPlan::default()).unwrap();
        fs::remove_file(dir.join(MANIFEST)).unwrap();
        let outcome = load_latest(&dir);
        let (generation, loaded) = outcome.loaded.expect("scan finds the file");
        assert_eq!(generation, 5);
        assert_eq!(loaded, state);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_prunes_old_generations() {
        let dir = test_dir("prune");
        for generation in 1..=5 {
            write_generation(&dir, generation, &sample_state(4), 2, &ChaosPlan::default()).unwrap();
        }
        let mut gens = scan_generations(&dir);
        gens.sort_unstable();
        assert_eq!(gens, vec![4, 5]);
        assert_eq!(read_manifest(&dir), Some(vec![4, 5]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_loads_nothing() {
        let dir = test_dir("empty");
        let outcome = load_latest(&dir);
        assert!(outcome.loaded.is_none());
        assert_eq!(outcome.torn_detected, 0);
    }

    #[test]
    fn policy_defaults_are_disabled_and_epoch_cadenced() {
        let p = CheckpointPolicy::default();
        assert!(!p.enabled());
        let p = CheckpointPolicy::at("/tmp/x");
        assert!(p.enabled());
        assert_eq!(p.batch_cadence(12), Some(12), "default = epoch boundaries");
        let p = CheckpointPolicy {
            every_batches: Some(7),
            ..CheckpointPolicy::at("/tmp/x")
        };
        assert_eq!(p.batch_cadence(12), Some(7));
        let p = CheckpointPolicy {
            every_secs: Some(1.0),
            ..CheckpointPolicy::at("/tmp/x")
        };
        assert_eq!(p.batch_cadence(12), None, "pure time cadence");
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector: CRC-32/IEEE of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
