//! Deliberately defective queue variants proving the model checker's
//! teeth (compiled only under the `chk` feature, never in production).
//!
//! Each [`Defect`] plants one classic concurrency bug in an otherwise
//! idiomatic bounded-queue skeleton built from the same `crate::sync`
//! façade the real [`GlobalQueue`](crate::queue::GlobalQueue) uses. The
//! regression tests in `tests/model_check.rs` assert that
//! `gnnlab_chk::check` *finds* these bugs — if a refactor of the checker
//! ever stops catching them, that suite fails, not a production run.

use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;

/// Which bug to plant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Defect {
    /// `enqueue` notifies only on the empty→non-empty transition — the
    /// textbook "optimized" wakeup that loses a signal when two items
    /// arrive while two consumers wait. One consumer sleeps forever
    /// with work available: the checker reports a deadlock.
    LostWakeup,
    /// The first `dequeue` forgets to pop the item it returns, so the
    /// next consumer receives the same task again — an exactly-once
    /// violation the model test's assertion turns into a panic report.
    DoubleDelivery,
}

struct BrokenState<T> {
    items: VecDeque<T>,
    delivered: u64,
}

/// An unbounded blocking queue with one seeded bug; see [`Defect`].
pub struct BrokenQueue<T> {
    state: Mutex<BrokenState<T>>,
    not_empty: Condvar,
    defect: Defect,
}

impl<T: Clone> BrokenQueue<T> {
    /// Builds a queue exhibiting `defect`.
    pub fn new(defect: Defect) -> Self {
        BrokenQueue {
            state: Mutex::new(BrokenState {
                items: VecDeque::new(),
                delivered: 0,
            }),
            not_empty: Condvar::new(),
            defect,
        }
    }

    /// Enqueues one item.
    pub fn enqueue(&self, item: T) {
        let mut state = self.state.lock();
        let was_empty = state.items.is_empty();
        state.items.push_back(item);
        drop(state);
        match self.defect {
            // BUG(LostWakeup): only the empty→non-empty edge signals, so
            // the second of two back-to-back enqueues wakes nobody even
            // if a second consumer is parked.
            Defect::LostWakeup => {
                if was_empty {
                    self.not_empty.notify_one();
                }
            }
            Defect::DoubleDelivery => self.not_empty.notify_all(),
        }
    }

    /// Blocks until an item is available and returns it.
    pub fn dequeue(&self) -> T {
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.items.front().cloned() {
                let first = state.delivered == 0;
                state.delivered += 1;
                match self.defect {
                    // BUG(DoubleDelivery): the first delivery forgets to
                    // pop, so the item is handed out twice.
                    Defect::DoubleDelivery if first => {}
                    _ => {
                        state.items.pop_front();
                    }
                }
                return item;
            }
            self.not_empty.wait(&mut state);
        }
    }
}
