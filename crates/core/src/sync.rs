//! The crate's sync façade — see `gnnlab_par::sync`, which this
//! re-exports so core and par share one set of lock/condvar/atomic
//! types. Runtime modules import `Mutex`/`Condvar`/`AtomicU64`/
//! `AtomicUsize`/`Ordering` from here rather than naming `parking_lot`
//! or `std::sync::atomic` directly (the workspace lint enforces this);
//! the `chk` cargo feature swaps the whole façade for the model
//! checker's passthrough types.

// lint:allow(sync-facade) — this module IS the façade.

pub use gnnlab_par::sync::{
    AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Condvar, Mutex, MutexGuard, Ordering,
};
