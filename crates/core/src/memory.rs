//! Per-system GPU memory planning.
//!
//! The paper's first challenge (§3) is pure capacity accounting: graph
//! topology, runtime workspaces and the feature cache compete for 16 GB.
//! This module plans each system's allocations on a [`GpuMemory`] ledger
//! (all sizes paper-scale) and derives the resulting cache ratio α; plans
//! that do not fit surface as the `OOM` entries of Tables 4/5.

use crate::report::RunError;
use crate::systems::SystemKind;
use crate::workload::Workload;
use gnnlab_sampling::AlgorithmKind;
use gnnlab_sim::{GpuMemory, Testbed};
use gnnlab_tensor::ModelKind;

const GB: f64 = 1_073_741_824.0;

/// Sampling runtime workspace (frontier buffers, RNG state, temp arrays)
/// at paper scale, by algorithm. The DGL baseline's reservoir sampler
/// keeps larger temporaries (per-vertex buffers plus Python-side tensors);
/// the paper measured "about 1.3 GB" for DGL's 3-hop GCN sampling.
pub fn sample_workspace_bytes(system: SystemKind, algo: AlgorithmKind) -> u64 {
    let native = match algo {
        AlgorithmKind::Khop3Random | AlgorithmKind::Khop3Weighted => 1.3 * GB,
        AlgorithmKind::Khop2Random => 0.6 * GB,
        AlgorithmKind::RandomWalks => 1.5 * GB,
    };
    // DGL adds PyTorch's caching-allocator slack and Python-side tensor
    // copies on top of the kernel workspace.
    let v = if system == SystemKind::DglLike {
        native + 1.5 * GB
    } else {
        native
    };
    v as u64
}

/// Model-training runtime workspace (activations, gradients, optimizer
/// state for a batch of 8000) at paper scale. The paper measured "about
/// 3.6 GB" for the 3-layer GCN.
pub fn train_workspace_bytes(model: ModelKind) -> u64 {
    let v = match model {
        ModelKind::Gcn => 3.6 * GB,
        ModelKind::GraphSage => 2.5 * GB,
        ModelKind::PinSage => 4.5 * GB,
    };
    v as u64
}

/// The memory plan of one GPU role.
#[derive(Debug, Clone)]
pub struct GpuPlan {
    /// Ledger after planning (inspectable allocations).
    pub memory: GpuMemory,
    /// Cache ratio α this role can afford (0 if it holds no cache).
    pub cache_alpha: f64,
}

/// Plans a time-sharing GPU (DGL-like / T_SOTA / GNNLab standby trainer):
/// topology + sampling workspace + training workspace (+ cache remainder
/// if `with_cache`).
pub fn plan_timeshare_gpu(
    testbed: &Testbed,
    workload: &Workload,
    system: SystemKind,
    with_cache: bool,
) -> Result<GpuPlan, RunError> {
    let mut memory = testbed.gpu_memory();
    let oom = |e: gnnlab_sim::DeviceError| RunError::Oom {
        system,
        detail: e.to_string(),
    };
    memory
        .alloc("topology", workload.dataset.topo_bytes_paper())
        .map_err(oom)?;
    memory
        .alloc(
            "sample_workspace",
            sample_workspace_bytes(system, workload.algorithm),
        )
        .map_err(oom)?;
    memory
        .alloc("train_workspace", train_workspace_bytes(workload.model))
        .map_err(oom)?;
    let mut cache_alpha = 0.0;
    if with_cache {
        let feat = workload.dataset.feature_bytes_paper() as f64;
        let avail = memory.available() as f64;
        cache_alpha = (avail / feat).min(1.0);
        let cache_bytes = (cache_alpha * feat) as u64;
        memory.alloc("feature_cache", cache_bytes).map_err(oom)?;
    }
    Ok(GpuPlan {
        memory,
        cache_alpha,
    })
}

/// Plans a GNNLab Sampler GPU: topology + sampling workspace only.
pub fn plan_sampler_gpu(testbed: &Testbed, workload: &Workload) -> Result<GpuPlan, RunError> {
    let mut memory = testbed.gpu_memory();
    let oom = |e: gnnlab_sim::DeviceError| RunError::Oom {
        system: SystemKind::GnnLab,
        detail: e.to_string(),
    };
    memory
        .alloc("topology", workload.dataset.topo_bytes_paper())
        .map_err(oom)?;
    memory
        .alloc(
            "sample_workspace",
            sample_workspace_bytes(SystemKind::GnnLab, workload.algorithm),
        )
        .map_err(oom)?;
    Ok(GpuPlan {
        memory,
        cache_alpha: 0.0,
    })
}

/// Plans a GNNLab Trainer GPU: training workspace + cache remainder. No
/// topology — that is the factored design's capacity win.
pub fn plan_trainer_gpu(testbed: &Testbed, workload: &Workload) -> Result<GpuPlan, RunError> {
    let mut memory = testbed.gpu_memory();
    let oom = |e: gnnlab_sim::DeviceError| RunError::Oom {
        system: SystemKind::GnnLab,
        detail: e.to_string(),
    };
    memory
        .alloc("train_workspace", train_workspace_bytes(workload.model))
        .map_err(oom)?;
    let feat = workload.dataset.feature_bytes_paper() as f64;
    let cache_alpha = (memory.available() as f64 / feat).min(1.0);
    let cache_bytes = (cache_alpha * feat) as u64;
    memory.alloc("feature_cache", cache_bytes).map_err(oom)?;
    Ok(GpuPlan {
        memory,
        cache_alpha,
    })
}

/// Plans GNNLab's single-GPU alternating mode (§7.9): topology stays
/// resident all epoch; the sampling workspace is freed when the standby
/// Trainer takes over, so each *phase* must fit rather than their sum.
/// The static cache must coexist with the training phase.
pub fn plan_single_gpu(testbed: &Testbed, workload: &Workload) -> Result<GpuPlan, RunError> {
    // Phase 1 feasibility: topology + sampling workspace.
    plan_sampler_gpu(testbed, workload)?;
    // Phase 2: topology + training workspace + cache remainder.
    let mut memory = testbed.gpu_memory();
    let oom = |e: gnnlab_sim::DeviceError| RunError::Oom {
        system: SystemKind::GnnLab,
        detail: e.to_string(),
    };
    memory
        .alloc("topology", workload.dataset.topo_bytes_paper())
        .map_err(oom)?;
    memory
        .alloc("train_workspace", train_workspace_bytes(workload.model))
        .map_err(oom)?;
    let feat = workload.dataset.feature_bytes_paper() as f64;
    let cache_alpha = (memory.available() as f64 / feat).min(1.0);
    let cache_bytes = (cache_alpha * feat) as u64;
    memory.alloc("feature_cache", cache_bytes).map_err(oom)?;
    Ok(GpuPlan {
        memory,
        cache_alpha,
    })
}

/// Plans a PyG-like GPU: training workspace only (sampling and extraction
/// happen on the CPU; no cache).
pub fn plan_pyg_gpu(testbed: &Testbed, workload: &Workload) -> Result<GpuPlan, RunError> {
    let mut memory = testbed.gpu_memory();
    memory
        .alloc("train_workspace", train_workspace_bytes(workload.model))
        .map_err(|e| RunError::Oom {
            system: SystemKind::PygLike,
            detail: e.to_string(),
        })?;
    Ok(GpuPlan {
        memory,
        cache_alpha: 0.0,
    })
}

// ---------------------------------------------------------------------------
// Live-graph planning (the threaded runtime's per-executor caches).
// ---------------------------------------------------------------------------

/// Byte footprint of an in-process graph, measured from its actual CSR
/// and feature shapes — the live analogue of the paper-scale dataset
/// tables above. The threaded runtime plans per-executor caches on these
/// numbers.
#[derive(Debug, Clone, Copy)]
pub struct LiveGraphBytes {
    /// Vertices in the graph.
    pub num_vertices: usize,
    /// CSR topology bytes: `(n + 1)` u64 offsets plus one u32 per edge.
    pub topology: u64,
    /// Full feature-matrix bytes (`n × dim` f32).
    pub features: u64,
    /// Bytes of one feature row.
    pub row_bytes: u64,
}

impl LiveGraphBytes {
    /// Accounts a live graph's shapes.
    pub fn new(num_vertices: usize, num_edges: usize, feat_dim: usize) -> Self {
        let row_bytes = (feat_dim * std::mem::size_of::<f32>()) as u64;
        LiveGraphBytes {
            num_vertices,
            topology: (num_vertices as u64 + 1) * 8 + num_edges as u64 * 4,
            features: num_vertices as u64 * row_bytes,
            row_bytes,
        }
    }
}

/// Coarse per-seed neighborhood expansion of one mini-batch, by model
/// (GCN's 3-hop [15, 10, 5] fanout, GraphSage's 2-hop [25, 10], PinSage's
/// walk-based frontier). Deliberately an upper-bound-ish constant: live
/// workspace planning needs a deterministic estimate, not a measurement.
fn fanout_expansion(kind: ModelKind) -> u64 {
    match kind {
        ModelKind::Gcn => 750,
        ModelKind::GraphSage => 250,
        ModelKind::PinSage => 400,
    }
}

/// Sampling workspace (frontier buffers, RNG state, temporaries) for one
/// live mini-batch: the sampled frontier capped by the vertex count, at
/// 16 bytes per frontier entry (id + dedup/temp overhead).
pub fn live_sample_workspace_bytes(kind: ModelKind, batch_size: usize, num_vertices: usize) -> u64 {
    let frontier = (batch_size as u64 * fanout_expansion(kind)).min(num_vertices as u64);
    frontier.max(1) * 16
}

/// Training workspace (activations, gradients, Adam moments) for one live
/// mini-batch: input-layer rows are the sampled frontier; each row keeps
/// `in + hidden + classes` f32 activations, tripled for gradient and
/// optimizer state.
pub fn live_train_workspace_bytes(
    kind: ModelKind,
    batch_size: usize,
    in_dim: usize,
    hidden_dim: usize,
    num_classes: usize,
    num_vertices: usize,
) -> u64 {
    let rows = (batch_size as u64 * fanout_expansion(kind)).min(num_vertices as u64);
    rows.max(1) * ((in_dim + hidden_dim + num_classes) as u64 * 4) * 3
}

/// The two consumer memory shapes of one threaded run: a dedicated
/// Trainer (train workspace + cache remainder) and a standby Trainer (a
/// Sampler that switched: topology + sampling workspace + train workspace
/// + the *smaller* cache remainder — exactly why `T_t' > T_t` in §5.3).
#[derive(Debug, Clone)]
pub struct LiveCachePlan {
    /// Per-device budget both shapes plan against.
    pub budget: u64,
    /// The dedicated-Trainer ledger.
    pub trainer: GpuPlan,
    /// The standby-Trainer ledger.
    pub standby: GpuPlan,
    /// Exact cache rows the Trainer shape affords.
    pub trainer_rows: usize,
    /// Exact cache rows the standby shape affords (≤ `trainer_rows`).
    pub standby_rows: usize,
    /// Bytes of one feature row.
    pub row_bytes: u64,
}

/// Plans one role's ledger: mandatory workspaces first, then a
/// `feature_cache` allocation of exactly `rows × row_bytes` from the
/// remainder. Workspaces that do not fit are clamped rather than OOM-ing
/// (the threaded runtime executes in host memory; the ledger is
/// accounting, and an over-tight budget should degrade to a zero-row
/// cache, not kill the run).
fn plan_live_role(
    budget: u64,
    n: usize,
    row_bytes: u64,
    workspaces: &[(&str, u64)],
) -> (GpuPlan, usize) {
    let mut memory = GpuMemory::new(budget);
    for (label, bytes) in workspaces {
        let fit = (*bytes).min(memory.available());
        gnnlab_par::invariant!(
            memory.alloc(label, fit),
            "the request was clamped to the bytes still available"
        );
    }
    let rows = ((memory.available() / row_bytes.max(1)) as usize).min(n);
    gnnlab_par::invariant!(
        memory.alloc("feature_cache", rows as u64 * row_bytes),
        "rows was computed from the remaining budget, so the remainder fits"
    );
    let cache_alpha = if n == 0 { 0.0 } else { rows as f64 / n as f64 };
    (
        GpuPlan {
            memory,
            cache_alpha,
        },
        rows,
    )
}

/// Plans both consumer shapes of a threaded run.
///
/// With an explicit `device_budget` both roles split that budget per the
/// §3 capacity accounting. Without one, the budget is derived so the
/// dedicated Trainer's cache lands on `target_alpha` (train workspace +
/// exactly `ceil(target_alpha · n)` cached rows) — the standby, which
/// additionally holds topology and the sampling workspace, then affords
/// strictly fewer rows on any graph with nonzero topology.
pub fn plan_live_run(
    device_budget: Option<u64>,
    target_alpha: f64,
    g: &LiveGraphBytes,
    sample_ws: u64,
    train_ws: u64,
) -> LiveCachePlan {
    let n = g.num_vertices;
    let target_rows = ((target_alpha.clamp(0.0, 1.0) * n as f64).ceil() as usize).min(n);
    let budget = device_budget.unwrap_or(train_ws + target_rows as u64 * g.row_bytes);
    let (trainer, trainer_rows) =
        plan_live_role(budget, n, g.row_bytes, &[("train_workspace", train_ws)]);
    let (standby, standby_rows) = plan_live_role(
        budget,
        n,
        g.row_bytes,
        &[
            ("topology", g.topology),
            ("sample_workspace", sample_ws),
            ("train_workspace", train_ws),
        ],
    );
    LiveCachePlan {
        budget,
        trainer,
        standby,
        trainer_rows,
        standby_rows,
        row_bytes: g.row_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnlab_graph::{DatasetKind, Scale};

    fn testbed() -> Testbed {
        Testbed::paper()
    }

    fn wl(model: ModelKind, ds: DatasetKind) -> Workload {
        Workload::new(model, ds, Scale::new(4096), 1)
    }

    #[test]
    fn gnnlab_trainer_has_bigger_cache_than_timeshare() {
        // The §4 capacity win: on PA, the GNNLab trainer caches ~2-3x more
        // than a time-sharing GPU that also holds topology.
        let w = wl(ModelKind::Gcn, DatasetKind::Papers);
        let trainer = plan_trainer_gpu(&testbed(), &w).unwrap();
        let tsota = plan_timeshare_gpu(&testbed(), &w, SystemKind::TSota, true).unwrap();
        assert!(
            trainer.cache_alpha > 1.8 * tsota.cache_alpha,
            "trainer α {} vs tsota α {}",
            trainer.cache_alpha,
            tsota.cache_alpha
        );
        // Paper Table 5: GNNLab 21 %, T_SOTA 7 % for GCN on PA.
        assert!(
            trainer.cache_alpha > 0.15 && trainer.cache_alpha < 0.30,
            "α {}",
            trainer.cache_alpha
        );
    }

    #[test]
    fn uk_ooms_for_gcn_on_timeshare_but_fits_gnnlab() {
        // Table 4: UK is OOM on DGL and T_SOTA for GCN, fine on GNNLab.
        let w = wl(ModelKind::Gcn, DatasetKind::Uk);
        assert!(plan_timeshare_gpu(&testbed(), &w, SystemKind::TSota, true).is_err());
        assert!(plan_timeshare_gpu(&testbed(), &w, SystemKind::DglLike, false).is_err());
        assert!(plan_sampler_gpu(&testbed(), &w).is_ok());
        assert!(plan_trainer_gpu(&testbed(), &w).is_ok());
    }

    #[test]
    fn uk_graphsage_fits_tsota_with_tiny_cache() {
        // Table 5: T_SOTA runs GSG on UK with R% = 0.
        let w = wl(ModelKind::GraphSage, DatasetKind::Uk);
        let plan = plan_timeshare_gpu(&testbed(), &w, SystemKind::TSota, true).unwrap();
        assert!(plan.cache_alpha < 0.06, "α {}", plan.cache_alpha);
    }

    #[test]
    fn products_fits_entirely() {
        // PR: all topology + features fit one GPU (α = 1).
        let w = wl(ModelKind::Gcn, DatasetKind::Products);
        let plan = plan_timeshare_gpu(&testbed(), &w, SystemKind::TSota, true).unwrap();
        assert!((plan.cache_alpha - 1.0).abs() < 1e-9);
        let trainer = plan_trainer_gpu(&testbed(), &w).unwrap();
        assert!((trainer.cache_alpha - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pyg_plan_never_holds_topology() {
        let w = wl(ModelKind::Gcn, DatasetKind::Uk);
        let plan = plan_pyg_gpu(&testbed(), &w).unwrap();
        assert!(plan.memory.allocation("topology").is_none());
        assert_eq!(plan.cache_alpha, 0.0);
    }

    #[test]
    fn live_plan_derived_budget_hits_the_target_alpha() {
        let g = LiveGraphBytes::new(600, 6000, 8);
        let sample_ws = live_sample_workspace_bytes(ModelKind::GraphSage, 32, 600);
        let train_ws = live_train_workspace_bytes(ModelKind::GraphSage, 32, 8, 16, 4, 600);
        let plan = plan_live_run(None, 0.5, &g, sample_ws, train_ws);
        assert_eq!(plan.trainer_rows, 300);
        assert!((plan.trainer.cache_alpha - 0.5).abs() < 1e-12);
        // The standby also holds topology + sampling workspace, so its
        // cache is strictly smaller.
        assert!(plan.standby_rows < plan.trainer_rows);
        assert!(plan.standby.cache_alpha < plan.trainer.cache_alpha);
        // Ledgers record the cache exactly (no rounding row).
        assert_eq!(
            plan.trainer.memory.allocation("feature_cache"),
            Some(plan.trainer_rows as u64 * plan.row_bytes)
        );
        assert_eq!(
            plan.standby.memory.allocation("feature_cache"),
            Some(plan.standby_rows as u64 * plan.row_bytes)
        );
        assert!(plan.standby.memory.allocation("topology").is_some());
        assert!(plan.trainer.memory.allocation("topology").is_none());
    }

    #[test]
    fn live_plan_tight_budget_degrades_to_zero_cache() {
        let g = LiveGraphBytes::new(100, 1000, 32);
        let plan = plan_live_run(Some(64), 1.0, &g, 1 << 20, 1 << 20);
        assert_eq!(plan.trainer_rows, 0);
        assert_eq!(plan.standby_rows, 0);
        assert_eq!(plan.trainer.cache_alpha, 0.0);
        // Everything stays within the explicit budget.
        assert!(plan.trainer.memory.used() <= 64);
        assert!(plan.standby.memory.used() <= 64);
    }

    #[test]
    fn live_plan_alpha_zero_plans_no_cache_rows() {
        let g = LiveGraphBytes::new(600, 6000, 8);
        let plan = plan_live_run(None, 0.0, &g, 1024, 4096);
        assert_eq!(plan.trainer_rows, 0);
        assert_eq!(plan.standby_rows, 0);
    }

    #[test]
    fn dgl_workspace_is_larger_than_native() {
        assert!(
            sample_workspace_bytes(SystemKind::DglLike, AlgorithmKind::Khop3Random)
                > sample_workspace_bytes(SystemKind::TSota, AlgorithmKind::Khop3Random)
        );
    }
}
