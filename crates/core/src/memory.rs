//! Per-system GPU memory planning.
//!
//! The paper's first challenge (§3) is pure capacity accounting: graph
//! topology, runtime workspaces and the feature cache compete for 16 GB.
//! This module plans each system's allocations on a [`GpuMemory`] ledger
//! (all sizes paper-scale) and derives the resulting cache ratio α; plans
//! that do not fit surface as the `OOM` entries of Tables 4/5.

use crate::report::RunError;
use crate::systems::SystemKind;
use crate::workload::Workload;
use gnnlab_sampling::AlgorithmKind;
use gnnlab_sim::{GpuMemory, Testbed};
use gnnlab_tensor::ModelKind;

const GB: f64 = 1_073_741_824.0;

/// Sampling runtime workspace (frontier buffers, RNG state, temp arrays)
/// at paper scale, by algorithm. The DGL baseline's reservoir sampler
/// keeps larger temporaries (per-vertex buffers plus Python-side tensors);
/// the paper measured "about 1.3 GB" for DGL's 3-hop GCN sampling.
pub fn sample_workspace_bytes(system: SystemKind, algo: AlgorithmKind) -> u64 {
    let native = match algo {
        AlgorithmKind::Khop3Random | AlgorithmKind::Khop3Weighted => 1.3 * GB,
        AlgorithmKind::Khop2Random => 0.6 * GB,
        AlgorithmKind::RandomWalks => 1.5 * GB,
    };
    // DGL adds PyTorch's caching-allocator slack and Python-side tensor
    // copies on top of the kernel workspace.
    let v = if system == SystemKind::DglLike {
        native + 1.5 * GB
    } else {
        native
    };
    v as u64
}

/// Model-training runtime workspace (activations, gradients, optimizer
/// state for a batch of 8000) at paper scale. The paper measured "about
/// 3.6 GB" for the 3-layer GCN.
pub fn train_workspace_bytes(model: ModelKind) -> u64 {
    let v = match model {
        ModelKind::Gcn => 3.6 * GB,
        ModelKind::GraphSage => 2.5 * GB,
        ModelKind::PinSage => 4.5 * GB,
    };
    v as u64
}

/// The memory plan of one GPU role.
#[derive(Debug, Clone)]
pub struct GpuPlan {
    /// Ledger after planning (inspectable allocations).
    pub memory: GpuMemory,
    /// Cache ratio α this role can afford (0 if it holds no cache).
    pub cache_alpha: f64,
}

/// Plans a time-sharing GPU (DGL-like / T_SOTA / GNNLab standby trainer):
/// topology + sampling workspace + training workspace (+ cache remainder
/// if `with_cache`).
pub fn plan_timeshare_gpu(
    testbed: &Testbed,
    workload: &Workload,
    system: SystemKind,
    with_cache: bool,
) -> Result<GpuPlan, RunError> {
    let mut memory = testbed.gpu_memory();
    let oom = |e: gnnlab_sim::DeviceError| RunError::Oom {
        system,
        detail: e.to_string(),
    };
    memory
        .alloc("topology", workload.dataset.topo_bytes_paper())
        .map_err(oom)?;
    memory
        .alloc(
            "sample_workspace",
            sample_workspace_bytes(system, workload.algorithm),
        )
        .map_err(oom)?;
    memory
        .alloc("train_workspace", train_workspace_bytes(workload.model))
        .map_err(oom)?;
    let mut cache_alpha = 0.0;
    if with_cache {
        let feat = workload.dataset.feature_bytes_paper() as f64;
        let avail = memory.available() as f64;
        cache_alpha = (avail / feat).min(1.0);
        let cache_bytes = (cache_alpha * feat) as u64;
        memory.alloc("feature_cache", cache_bytes).map_err(oom)?;
    }
    Ok(GpuPlan {
        memory,
        cache_alpha,
    })
}

/// Plans a GNNLab Sampler GPU: topology + sampling workspace only.
pub fn plan_sampler_gpu(testbed: &Testbed, workload: &Workload) -> Result<GpuPlan, RunError> {
    let mut memory = testbed.gpu_memory();
    let oom = |e: gnnlab_sim::DeviceError| RunError::Oom {
        system: SystemKind::GnnLab,
        detail: e.to_string(),
    };
    memory
        .alloc("topology", workload.dataset.topo_bytes_paper())
        .map_err(oom)?;
    memory
        .alloc(
            "sample_workspace",
            sample_workspace_bytes(SystemKind::GnnLab, workload.algorithm),
        )
        .map_err(oom)?;
    Ok(GpuPlan {
        memory,
        cache_alpha: 0.0,
    })
}

/// Plans a GNNLab Trainer GPU: training workspace + cache remainder. No
/// topology — that is the factored design's capacity win.
pub fn plan_trainer_gpu(testbed: &Testbed, workload: &Workload) -> Result<GpuPlan, RunError> {
    let mut memory = testbed.gpu_memory();
    let oom = |e: gnnlab_sim::DeviceError| RunError::Oom {
        system: SystemKind::GnnLab,
        detail: e.to_string(),
    };
    memory
        .alloc("train_workspace", train_workspace_bytes(workload.model))
        .map_err(oom)?;
    let feat = workload.dataset.feature_bytes_paper() as f64;
    let cache_alpha = (memory.available() as f64 / feat).min(1.0);
    let cache_bytes = (cache_alpha * feat) as u64;
    memory.alloc("feature_cache", cache_bytes).map_err(oom)?;
    Ok(GpuPlan {
        memory,
        cache_alpha,
    })
}

/// Plans GNNLab's single-GPU alternating mode (§7.9): topology stays
/// resident all epoch; the sampling workspace is freed when the standby
/// Trainer takes over, so each *phase* must fit rather than their sum.
/// The static cache must coexist with the training phase.
pub fn plan_single_gpu(testbed: &Testbed, workload: &Workload) -> Result<GpuPlan, RunError> {
    // Phase 1 feasibility: topology + sampling workspace.
    plan_sampler_gpu(testbed, workload)?;
    // Phase 2: topology + training workspace + cache remainder.
    let mut memory = testbed.gpu_memory();
    let oom = |e: gnnlab_sim::DeviceError| RunError::Oom {
        system: SystemKind::GnnLab,
        detail: e.to_string(),
    };
    memory
        .alloc("topology", workload.dataset.topo_bytes_paper())
        .map_err(oom)?;
    memory
        .alloc("train_workspace", train_workspace_bytes(workload.model))
        .map_err(oom)?;
    let feat = workload.dataset.feature_bytes_paper() as f64;
    let cache_alpha = (memory.available() as f64 / feat).min(1.0);
    let cache_bytes = (cache_alpha * feat) as u64;
    memory.alloc("feature_cache", cache_bytes).map_err(oom)?;
    Ok(GpuPlan {
        memory,
        cache_alpha,
    })
}

/// Plans a PyG-like GPU: training workspace only (sampling and extraction
/// happen on the CPU; no cache).
pub fn plan_pyg_gpu(testbed: &Testbed, workload: &Workload) -> Result<GpuPlan, RunError> {
    let mut memory = testbed.gpu_memory();
    memory
        .alloc("train_workspace", train_workspace_bytes(workload.model))
        .map_err(|e| RunError::Oom {
            system: SystemKind::PygLike,
            detail: e.to_string(),
        })?;
    Ok(GpuPlan {
        memory,
        cache_alpha: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnlab_graph::{DatasetKind, Scale};

    fn testbed() -> Testbed {
        Testbed::paper()
    }

    fn wl(model: ModelKind, ds: DatasetKind) -> Workload {
        Workload::new(model, ds, Scale::new(4096), 1)
    }

    #[test]
    fn gnnlab_trainer_has_bigger_cache_than_timeshare() {
        // The §4 capacity win: on PA, the GNNLab trainer caches ~2-3x more
        // than a time-sharing GPU that also holds topology.
        let w = wl(ModelKind::Gcn, DatasetKind::Papers);
        let trainer = plan_trainer_gpu(&testbed(), &w).unwrap();
        let tsota = plan_timeshare_gpu(&testbed(), &w, SystemKind::TSota, true).unwrap();
        assert!(
            trainer.cache_alpha > 1.8 * tsota.cache_alpha,
            "trainer α {} vs tsota α {}",
            trainer.cache_alpha,
            tsota.cache_alpha
        );
        // Paper Table 5: GNNLab 21 %, T_SOTA 7 % for GCN on PA.
        assert!(
            trainer.cache_alpha > 0.15 && trainer.cache_alpha < 0.30,
            "α {}",
            trainer.cache_alpha
        );
    }

    #[test]
    fn uk_ooms_for_gcn_on_timeshare_but_fits_gnnlab() {
        // Table 4: UK is OOM on DGL and T_SOTA for GCN, fine on GNNLab.
        let w = wl(ModelKind::Gcn, DatasetKind::Uk);
        assert!(plan_timeshare_gpu(&testbed(), &w, SystemKind::TSota, true).is_err());
        assert!(plan_timeshare_gpu(&testbed(), &w, SystemKind::DglLike, false).is_err());
        assert!(plan_sampler_gpu(&testbed(), &w).is_ok());
        assert!(plan_trainer_gpu(&testbed(), &w).is_ok());
    }

    #[test]
    fn uk_graphsage_fits_tsota_with_tiny_cache() {
        // Table 5: T_SOTA runs GSG on UK with R% = 0.
        let w = wl(ModelKind::GraphSage, DatasetKind::Uk);
        let plan = plan_timeshare_gpu(&testbed(), &w, SystemKind::TSota, true).unwrap();
        assert!(plan.cache_alpha < 0.06, "α {}", plan.cache_alpha);
    }

    #[test]
    fn products_fits_entirely() {
        // PR: all topology + features fit one GPU (α = 1).
        let w = wl(ModelKind::Gcn, DatasetKind::Products);
        let plan = plan_timeshare_gpu(&testbed(), &w, SystemKind::TSota, true).unwrap();
        assert!((plan.cache_alpha - 1.0).abs() < 1e-9);
        let trainer = plan_trainer_gpu(&testbed(), &w).unwrap();
        assert!((trainer.cache_alpha - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pyg_plan_never_holds_topology() {
        let w = wl(ModelKind::Gcn, DatasetKind::Uk);
        let plan = plan_pyg_gpu(&testbed(), &w).unwrap();
        assert!(plan.memory.allocation("topology").is_none());
        assert_eq!(plan.cache_alpha, 0.0);
    }

    #[test]
    fn dgl_workspace_is_larger_than_native() {
        assert!(
            sample_workspace_bytes(SystemKind::DglLike, AlgorithmKind::Khop3Random)
                > sample_workspace_bytes(SystemKind::TSota, AlgorithmKind::Khop3Random)
        );
    }
}
