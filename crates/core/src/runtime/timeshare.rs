//! Time-sharing epoch simulation (PyG-like, DGL-like, T_SOTA).
//!
//! The conventional design (§2, Fig. 2): every GPU runs the full
//! Sample → Extract → Train sequence for its share of mini-batches.
//! Capacity contention (topology + workspace + cache on the same GPU) and
//! host-bandwidth contention (all GPUs extract concurrently) both live
//! here.

use super::context::{build_cache_table, SimContext};
use crate::memory::{plan_pyg_gpu, plan_timeshare_gpu};
use crate::report::{EpochReport, RunError};
use crate::systems::SystemKind;
use crate::trace::EpochTrace;
use gnnlab_cache::CacheStats;
use gnnlab_obs::{names, Executor, Stage};
use gnnlab_sim::ns_to_secs;

/// Simulates one time-sharing epoch over `ctx.testbed.num_gpus` GPUs.
pub fn run_timeshare_epoch(
    ctx: &SimContext<'_>,
    trace: &EpochTrace,
) -> Result<EpochReport, RunError> {
    let system = ctx.system;
    let plan = match system {
        SystemKind::PygLike => plan_pyg_gpu(&ctx.testbed, ctx.workload)?,
        SystemKind::DglLike => plan_timeshare_gpu(&ctx.testbed, ctx.workload, system, false)?,
        SystemKind::TSota => plan_timeshare_gpu(&ctx.testbed, ctx.workload, system, true)?,
        SystemKind::GnnLab => {
            return Err(RunError::Unsupported(
                "GNNLab is not a time-sharing system".to_string(),
            ))
        }
    };
    let cache = system
        .has_cache()
        .then(|| build_cache_table(ctx.workload, ctx.policy, plan.cache_alpha));

    let num_gpus = ctx.testbed.num_gpus;
    let factor = trace.factor;
    let mut gpu_clock = vec![0u64; num_gpus];
    let mut report = EpochReport::new(system);
    report.cache_ratio = plan.cache_alpha;
    report.num_trainers = num_gpus;
    let mut stats = CacheStats::default();
    let row_bytes = ctx.workload.dataset.row_bytes();

    for (i, b) in trace.batches.iter().enumerate() {
        let gpu = i % num_gpus;
        let g = ctx
            .cost
            .sample_time(&ctx.sample_cost(b, trace), system.sample_device());
        let m = if cache.is_some() {
            ctx.cost.mark_time(b.input_nodes.len() as f64 * factor)
        } else {
            0
        };
        let (miss, hit) = ctx.extract_bytes(b, cache.as_ref(), factor);
        // All GPUs extract concurrently in steady state — the shared-host-
        // bandwidth contention that flattens DGL/T_SOTA scalability
        // (Fig. 14).
        let e = ctx
            .cost
            .extract_time(miss, hit, system.gather_path(), num_gpus);
        let t = ctx.cost.train_time(b.flops * factor);
        let t0 = gpu_clock[gpu];
        gpu_clock[gpu] += g + m + e + t;

        report.stages.sample_g += ns_to_secs(g);
        report.stages.sample_m += ns_to_secs(m);
        report.stages.extract += ns_to_secs(e);
        report.stages.train += ns_to_secs(t);
        report.transferred_bytes += miss;
        if let Some(table) = &cache {
            stats.record(table, &b.input_nodes, row_bytes);
        }
        if let Some(obs) = ctx.obs {
            // A time-sharing GPU runs the full pipeline serially; it plays
            // both roles, recorded here as a Trainer track.
            let (d, b_id) = (gpu as u32, i as u64);
            obs.record_span(d, Executor::Trainer, Stage::SampleG, b_id, t0, t0 + g);
            if m > 0 {
                obs.record_span(
                    d,
                    Executor::Trainer,
                    Stage::SampleM,
                    b_id,
                    t0 + g,
                    t0 + g + m,
                );
            }
            obs.record_span(
                d,
                Executor::Trainer,
                Stage::Extract,
                b_id,
                t0 + g + m,
                t0 + g + m + e,
            );
            let te = t0 + g + m + e;
            obs.record_span(d, Executor::Trainer, Stage::Train, b_id, te, te + t);
            obs.metrics.counter_add(names::CACHE_HIT_BYTES, hit);
            obs.metrics.counter_add(names::CACHE_MISS_BYTES, miss);
            if hit + miss > 0.0 {
                obs.metrics
                    .observe(names::CACHE_BATCH_HIT_RATE, hit / (hit + miss));
            }
        }
    }
    report.hit_rate = stats.hit_rate();
    report.epoch_time = ns_to_secs(gpu_clock.into_iter().max().unwrap_or(0));
    if let Some(obs) = ctx.obs {
        stats.publish(&obs.metrics);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use gnnlab_graph::{DatasetKind, Scale};
    use gnnlab_tensor::ModelKind;

    fn workload(model: ModelKind, ds: DatasetKind) -> Workload {
        Workload::new(model, ds, Scale::new(4096), 1)
    }

    fn run(w: &Workload, system: SystemKind, gpus: usize) -> Result<EpochReport, RunError> {
        let ctx = SimContext::new(w, system).with_gpus(gpus);
        let trace = EpochTrace::record(w, system.kernel(), ctx.epoch);
        run_timeshare_epoch(&ctx, &trace)
    }

    #[test]
    fn dgl_beats_pyg_and_tsota_beats_dgl() {
        let w = workload(ModelKind::GraphSage, DatasetKind::Products);
        let pyg = run(&w, SystemKind::PygLike, 8).unwrap();
        let dgl = run(&w, SystemKind::DglLike, 8).unwrap();
        let tsota = run(&w, SystemKind::TSota, 8).unwrap();
        assert!(
            pyg.epoch_time > dgl.epoch_time,
            "pyg {} dgl {}",
            pyg.epoch_time,
            dgl.epoch_time
        );
        assert!(
            dgl.epoch_time > tsota.epoch_time,
            "dgl {} tsota {}",
            dgl.epoch_time,
            tsota.epoch_time
        );
        // With a single GPU, PyG's CPU sampling dominates and the gap is
        // large (Table 1 / Table 4 shape).
        let pyg1 = run(&w, SystemKind::PygLike, 1).unwrap();
        let dgl1 = run(&w, SystemKind::DglLike, 1).unwrap();
        assert!(
            pyg1.epoch_time > 2.0 * dgl1.epoch_time,
            "pyg1 {} dgl1 {}",
            pyg1.epoch_time,
            dgl1.epoch_time
        );
    }

    #[test]
    fn tsota_cache_reduces_transfer() {
        let w = workload(ModelKind::GraphSage, DatasetKind::Products);
        let dgl = run(&w, SystemKind::DglLike, 8).unwrap();
        let tsota = run(&w, SystemKind::TSota, 8).unwrap();
        // PR fits entirely: T_SOTA hit rate ~ 100 %.
        assert!(tsota.hit_rate > 0.99, "hit {}", tsota.hit_rate);
        assert!(tsota.transferred_bytes < 0.05 * dgl.transferred_bytes);
        assert_eq!(dgl.hit_rate, 0.0);
    }

    #[test]
    fn uk_ooms_on_dgl() {
        let w = workload(ModelKind::Gcn, DatasetKind::Uk);
        assert!(matches!(
            run(&w, SystemKind::DglLike, 8),
            Err(RunError::Oom { .. })
        ));
    }

    #[test]
    fn more_gpus_reduce_epoch_time_sublinearly() {
        let w = workload(ModelKind::Gcn, DatasetKind::Papers);
        let one = run(&w, SystemKind::DglLike, 1).unwrap();
        let eight = run(&w, SystemKind::DglLike, 8).unwrap();
        assert!(eight.epoch_time < one.epoch_time);
        // Extract contention prevents linear scaling (Fig. 14).
        assert!(
            eight.epoch_time > one.epoch_time / 7.0,
            "one {} eight {}",
            one.epoch_time,
            eight.epoch_time
        );
    }

    #[test]
    fn gnnlab_is_rejected_here() {
        let w = workload(ModelKind::Gcn, DatasetKind::Products);
        assert!(matches!(
            run(&w, SystemKind::GnnLab, 8),
            Err(RunError::Unsupported(_))
        ));
    }

    #[test]
    fn stage_sums_are_gpu_count_invariant() {
        // Table 1 vs Table 5 consistency: stage sums barely move with GPU
        // count (only extract contention changes).
        let w = workload(ModelKind::GraphSage, DatasetKind::Papers);
        let one = run(&w, SystemKind::TSota, 1).unwrap();
        let two = run(&w, SystemKind::TSota, 2).unwrap();
        assert!((one.stages.sample_g - two.stages.sample_g).abs() < 1e-6);
        assert!((one.stages.train - two.stages.train).abs() < 1e-6);
    }
}
