//! The AGL batch-mode alternative (§3 Discussion).
//!
//! At the start of each epoch all GPUs load topology and sample; then all
//! GPUs swap topology out and load the feature cache for Extract/Train.
//! The paper dismisses this design because the per-epoch reloads cost more
//! than tens of GNNLab epochs; this simulator regenerates that comparison.

use super::context::{build_cache_table, SimContext};
use crate::memory::{plan_sampler_gpu, plan_trainer_gpu};
use crate::report::{EpochReport, RunError};
use crate::systems::SystemKind;
use crate::trace::EpochTrace;
use gnnlab_cache::CacheStats;
use gnnlab_obs::{names, Executor, Stage};
use gnnlab_sim::{ns_to_secs, GatherPath, SampleDevice};

/// Simulates one AGL batch-mode epoch over all GPUs.
///
/// Every epoch pays: topology load, sampling, topology unload + cache
/// load, then extraction/training. Because topology and cache never
/// coexist, the cache ratio equals GNNLab's trainer ratio.
pub fn run_agl_epoch(ctx: &SimContext<'_>, trace: &EpochTrace) -> Result<EpochReport, RunError> {
    // Both phases must individually fit.
    plan_sampler_gpu(&ctx.testbed, ctx.workload)?;
    let trainer_plan = plan_trainer_gpu(&ctx.testbed, ctx.workload)?;
    let cache = build_cache_table(ctx.workload, ctx.policy, trainer_plan.cache_alpha);

    let num_gpus = ctx.testbed.num_gpus;
    let factor = trace.factor;
    let row_bytes = ctx.workload.dataset.row_bytes();
    let topo_bytes = ctx.workload.dataset.topo_bytes_paper() as f64;
    let cache_bytes = trainer_plan.cache_alpha * ctx.workload.dataset.feature_bytes_paper() as f64;

    let mut report = EpochReport::new(SystemKind::GnnLab);
    report.cache_ratio = trainer_plan.cache_alpha;
    report.num_trainers = num_gpus;
    let mut stats = CacheStats::default();

    // Phase A: all GPUs load topology (PCIe shared), then sample shares.
    let topo_load = ctx.cost.topo_load_time(topo_bytes) * num_gpus as u64;
    let mut gpu_clock = vec![topo_load; num_gpus];
    if let Some(obs) = ctx.obs {
        for gpu in 0..num_gpus {
            obs.record_span(
                gpu as u32,
                Executor::Sampler,
                Stage::LoadTopology,
                0,
                0,
                topo_load,
            );
        }
    }
    for (i, b) in trace.batches.iter().enumerate() {
        let gpu = i % num_gpus;
        let g = ctx
            .cost
            .sample_time(&ctx.sample_cost(b, trace), SampleDevice::Gpu);
        let m = ctx.cost.mark_time(b.input_nodes.len() as f64 * factor);
        let t0 = gpu_clock[gpu];
        gpu_clock[gpu] += g + m;
        report.stages.sample_g += ns_to_secs(g);
        report.stages.sample_m += ns_to_secs(m);
        if let Some(obs) = ctx.obs {
            let (d, b_id) = (gpu as u32, i as u64);
            obs.record_span(d, Executor::Sampler, Stage::SampleG, b_id, t0, t0 + g);
            obs.record_span(
                d,
                Executor::Sampler,
                Stage::SampleM,
                b_id,
                t0 + g,
                t0 + g + m,
            );
        }
    }
    let sample_phase_end = gpu_clock.iter().copied().max().unwrap_or(0);

    // Phase B: swap topology for cache (cache fill is gathered rows), then
    // Extract/Train shares.
    let cache_load = ctx.cost.cache_load_time(cache_bytes) * num_gpus as u64;
    let mut gpu_clock = vec![sample_phase_end + cache_load; num_gpus];
    if let Some(obs) = ctx.obs {
        for gpu in 0..num_gpus {
            obs.record_span(
                gpu as u32,
                Executor::Trainer,
                Stage::LoadCache,
                0,
                sample_phase_end,
                sample_phase_end + cache_load,
            );
        }
    }
    for (i, b) in trace.batches.iter().enumerate() {
        let gpu = i % num_gpus;
        let (miss, hit) = ctx.extract_bytes(b, Some(&cache), factor);
        let e = ctx
            .cost
            .extract_time(miss, hit, GatherPath::GpuDirect, num_gpus);
        let t = ctx.cost.train_time(b.flops * factor);
        let t0 = gpu_clock[gpu];
        gpu_clock[gpu] += e + t;
        report.stages.extract += ns_to_secs(e);
        report.stages.train += ns_to_secs(t);
        report.transferred_bytes += miss;
        stats.record(&cache, &b.input_nodes, row_bytes);
        if let Some(obs) = ctx.obs {
            let (d, b_id) = (gpu as u32, i as u64);
            obs.record_span(d, Executor::Trainer, Stage::Extract, b_id, t0, t0 + e);
            obs.record_span(d, Executor::Trainer, Stage::Train, b_id, t0 + e, t0 + e + t);
            obs.metrics.counter_add(names::CACHE_HIT_BYTES, hit);
            obs.metrics.counter_add(names::CACHE_MISS_BYTES, miss);
        }
    }
    report.hit_rate = stats.hit_rate();
    report.epoch_time = ns_to_secs(gpu_clock.into_iter().max().unwrap_or(0));
    if let Some(obs) = ctx.obs {
        stats.publish(&obs.metrics);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{profile_stage_times, run_factored_epoch};
    use crate::schedule::num_samplers;
    use crate::workload::Workload;
    use gnnlab_graph::{DatasetKind, Scale};
    use gnnlab_sampling::Kernel;
    use gnnlab_tensor::ModelKind;

    #[test]
    fn agl_epoch_is_dominated_by_reloads() {
        let w = Workload::new(
            ModelKind::GraphSage,
            DatasetKind::Papers,
            Scale::new(4096),
            1,
        );
        let ctx = SimContext::new(&w, SystemKind::GnnLab);
        let t = EpochTrace::record(&w, Kernel::FisherYates, ctx.epoch);
        let agl = run_agl_epoch(&ctx, &t).unwrap();

        let st = profile_stage_times(&ctx, &t).unwrap();
        let ns = num_samplers(8, st.t_sample, st.t_trainer);
        let fact = run_factored_epoch(&ctx, &t, ns, 8 - ns, true).unwrap();

        // §3: "it may take a few seconds to load graph topological data and
        // large feature cache, while during the same time interval, tens of
        // epochs can be finished."
        assert!(
            agl.epoch_time > 10.0 * fact.epoch_time,
            "agl {} vs factored {}",
            agl.epoch_time,
            fact.epoch_time
        );
    }
}
