//! Preprocessing cost accounting (Table 6).

use super::context::SimContext;
use crate::memory::plan_trainer_gpu;
use crate::report::RunError;
use crate::trace::EpochTrace;
use gnnlab_obs::{names, Executor, Stage, HOST_DEVICE};
use gnnlab_sim::{ns_to_secs, SampleDevice};

/// The three preprocessing phases of Table 6 (seconds).
#[derive(Debug, Clone, Copy)]
pub struct PreprocessReport {
    /// P1: loading topology + features from disk to DRAM.
    pub disk_to_dram: f64,
    /// P2a: loading graph topology from DRAM to GPU memory.
    pub load_topology: f64,
    /// P2b: filling the feature cache (gathered rows) in GPU memory.
    pub load_cache: f64,
    /// P3: pre-sampling for PreSC#1 (one sampling-only epoch + hotness-map
    /// construction; the paper measures ~1.4× of one epoch's sampling).
    pub presampling: f64,
}

impl PreprocessReport {
    /// P2 total (DRAM → GPU).
    pub fn dram_to_gpu(&self) -> f64 {
        self.load_topology + self.load_cache
    }

    /// Grand total.
    pub fn total(&self) -> f64 {
        self.disk_to_dram + self.dram_to_gpu() + self.presampling
    }
}

/// Computes the Table 6 row for the context's workload: preprocessing for
/// a GNNLab run with a PreSC#1 cache on the trainer GPUs.
pub fn preprocess_report(
    ctx: &SimContext<'_>,
    trace: &EpochTrace,
) -> Result<PreprocessReport, RunError> {
    let topo = ctx.workload.dataset.topo_bytes_paper() as f64;
    let feat = ctx.workload.dataset.feature_bytes_paper() as f64;
    let plan = plan_trainer_gpu(&ctx.testbed, ctx.workload)?;
    let cache_bytes = plan.cache_alpha * feat;

    // P3: one epoch of GPU sampling plus hotness-map construction,
    // modeled as the paper's measured 1.4x of one sampling epoch.
    let _ = trace.factor;
    let sample_epoch_ns: u64 = trace
        .batches
        .iter()
        .map(|b| {
            ctx.cost
                .sample_time(&ctx.sample_cost(b, trace), SampleDevice::Gpu)
        })
        .sum();
    let disk_ns = ctx.cost.disk_load_time(topo + feat);
    let topo_ns = ctx.cost.topo_load_time(topo);
    let cache_ns = ctx.cost.cache_load_time(cache_bytes);
    let presample_ns = (sample_epoch_ns as f64 * 1.4).round() as u64;
    if let Some(obs) = ctx.obs {
        // The phases run back-to-back on one host timeline (Table 6 order).
        let mut t = 0u64;
        for (stage, dur) in [
            (Stage::DiskToDram, disk_ns),
            (Stage::LoadTopology, topo_ns),
            (Stage::LoadCache, cache_ns),
            (Stage::Presample, presample_ns),
        ] {
            obs.record_span(HOST_DEVICE, Executor::Host, stage, 0, t, t + dur);
            obs.metrics
                .observe(names::PREPROCESS_PHASE_SECS, ns_to_secs(dur));
            t += dur;
        }
        obs.metrics
            .gauge_set(names::PREPROCESS_TOTAL_SECS, ns_to_secs(t));
    }
    Ok(PreprocessReport {
        disk_to_dram: ns_to_secs(disk_ns),
        load_topology: ns_to_secs(topo_ns),
        load_cache: ns_to_secs(cache_ns),
        presampling: ns_to_secs(sample_epoch_ns) * 1.4,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::SystemKind;
    use crate::workload::Workload;
    use gnnlab_graph::{DatasetKind, Scale};
    use gnnlab_sampling::Kernel;
    use gnnlab_tensor::ModelKind;

    #[test]
    fn table6_shape_for_papers() {
        let w = Workload::new(ModelKind::Gcn, DatasetKind::Papers, Scale::new(4096), 1);
        let ctx = SimContext::new(&w, SystemKind::GnnLab);
        let t = EpochTrace::record(&w, Kernel::FisherYates, 0);
        let rep = preprocess_report(&ctx, &t).unwrap();
        // Paper Table 6 for PA: P1 = 48.6 s, load G = 3.2 s, load $ =
        // 10.7 s, pre-sampling = 1.8 s. Allow generous bands.
        assert!(
            rep.disk_to_dram > 30.0 && rep.disk_to_dram < 80.0,
            "{rep:?}"
        );
        assert!(
            rep.load_topology > 1.5 && rep.load_topology < 8.0,
            "{rep:?}"
        );
        assert!(rep.load_cache > 5.0 && rep.load_cache < 20.0, "{rep:?}");
        assert!(rep.presampling > 0.3 && rep.presampling < 5.0, "{rep:?}");
        // P1 dominates; pre-sampling is trivial (the §7.6 takeaway).
        assert!(rep.disk_to_dram > rep.dram_to_gpu());
        assert!(rep.presampling < rep.dram_to_gpu());
        assert!(
            (rep.total() - (rep.disk_to_dram + rep.dram_to_gpu() + rep.presampling)).abs() < 1e-9
        );
    }
}
