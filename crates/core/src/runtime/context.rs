//! Shared simulation context and helpers.

use crate::systems::SystemKind;
use crate::trace::BatchTrace;
use crate::workload::Workload;
use gnnlab_cache::{load_cache, CachePolicy, CacheTable, PolicyKind};
use gnnlab_obs::Obs;
use gnnlab_sampling::Kernel;
use gnnlab_sim::{CostModel, SampleCost, Testbed};

/// Everything an epoch simulation needs besides the trace.
pub struct SimContext<'a> {
    /// The workload under test.
    pub workload: &'a Workload,
    /// Which system design to simulate.
    pub system: SystemKind,
    /// The machine model.
    pub testbed: Testbed,
    /// The calibrated cost model.
    pub cost: CostModel,
    /// Caching policy for systems that cache (T_SOTA defaults to Degree,
    /// GNNLab to PreSC#1; Figs. 12/13 swap these).
    pub policy: PolicyKind,
    /// Epoch index to simulate (selects the deterministic shuffle).
    pub epoch: u64,
    /// Optional observability hub: when set, the runtimes record
    /// per-stage spans (in virtual time) and metrics into it.
    pub obs: Option<&'a Obs>,
}

impl<'a> SimContext<'a> {
    /// Standard context for `system` on `workload`: the paper's 8-GPU
    /// testbed, default cost model, and each system's default policy
    /// (Degree for T_SOTA, PreSC#1 for GNNLab).
    pub fn new(workload: &'a Workload, system: SystemKind) -> Self {
        let policy = match system {
            SystemKind::GnnLab => PolicyKind::PreSC { k: 1 },
            _ => PolicyKind::Degree,
        };
        SimContext {
            workload,
            system,
            testbed: Testbed::paper(),
            cost: CostModel::default(),
            policy,
            epoch: 2,
            obs: None,
        }
    }

    /// Overrides the GPU count.
    pub fn with_gpus(mut self, n: usize) -> Self {
        self.testbed = self.testbed.with_gpus(n);
        self
    }

    /// Attaches an observability hub; the runtimes record spans and
    /// metrics into it. `None` detaches (the default).
    pub fn with_obs(mut self, obs: Option<&'a Obs>) -> Self {
        self.obs = obs;
        self
    }

    /// Overrides the caching policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Paper-scale sampling cost inputs for one batch of `trace`.
    pub fn sample_cost(&self, b: &BatchTrace, trace: &crate::trace::EpochTrace) -> SampleCost {
        SampleCost {
            edges_scanned: b.work.edges_scanned as f64 * trace.factor,
            rng_draws: b.work.rng_draws as f64 * trace.factor,
            // Kernel launches are per-batch; when the 32-seed floor shrank
            // the batch count, launch_scale restores the paper's per-epoch
            // launch total.
            kernel_launches: b.work.kernel_launches as f64 * trace.launch_scale,
        }
    }

    /// Paper-scale (miss, hit) extract bytes for one batch against an
    /// optional cache.
    pub fn extract_bytes(
        &self,
        b: &BatchTrace,
        cache: Option<&CacheTable>,
        factor: f64,
    ) -> (f64, f64) {
        let row = self.workload.dataset.row_bytes() as f64;
        match cache {
            None => (b.input_nodes.len() as f64 * row * factor, 0.0),
            Some(t) => {
                let hits = b.input_nodes.iter().filter(|&&v| t.contains(v)).count() as f64;
                let misses = b.input_nodes.len() as f64 - hits;
                (misses * row * factor, hits * row * factor)
            }
        }
    }
}

/// Builds the cache table for `policy` at cache ratio `alpha` on the
/// workload's graph, running pre-sampling epochs if the policy requires
/// them (PreSC uses epochs `0..K` — the same shuffles the training run
/// itself sees first).
pub fn build_cache_table(workload: &Workload, policy: PolicyKind, alpha: f64) -> CacheTable {
    let n = workload.dataset.csr.num_vertices();
    if alpha <= 0.0 {
        return CacheTable::empty(n);
    }
    let algo = workload.sampler(Kernel::FisherYates);
    let out = CachePolicy::hotness(
        policy,
        &workload.dataset.csr,
        &workload.dataset.train_set,
        algo.as_ref(),
        workload.batch_size(),
        workload.seed,
    );
    load_cache(&out.hotness, alpha, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnlab_graph::{DatasetKind, Scale};
    use gnnlab_tensor::ModelKind;

    fn workload() -> Workload {
        Workload::new(
            ModelKind::GraphSage,
            DatasetKind::Products,
            Scale::new(4096),
            1,
        )
    }

    #[test]
    fn default_policies_per_system() {
        let w = workload();
        assert_eq!(
            SimContext::new(&w, SystemKind::TSota).policy,
            PolicyKind::Degree
        );
        assert_eq!(
            SimContext::new(&w, SystemKind::GnnLab).policy,
            PolicyKind::PreSC { k: 1 }
        );
    }

    #[test]
    fn cache_table_sizes_with_alpha() {
        let w = workload();
        let n = w.dataset.csr.num_vertices();
        let t = build_cache_table(&w, PolicyKind::Degree, 0.25);
        assert_eq!(t.len(), (n as f64 * 0.25).ceil() as usize);
        assert!(build_cache_table(&w, PolicyKind::Degree, 0.0).is_empty());
    }

    #[test]
    fn extract_bytes_split_miss_hit() {
        let w = workload();
        let ctx = SimContext::new(&w, SystemKind::GnnLab);
        let trace = crate::trace::EpochTrace::record(&w, Kernel::FisherYates, 0);
        let b = &trace.batches[0];
        let full_cache = build_cache_table(&w, PolicyKind::Degree, 1.0);
        let (miss, hit) = ctx.extract_bytes(b, Some(&full_cache), 1.0);
        assert_eq!(miss, 0.0);
        assert!(hit > 0.0);
        let (miss2, hit2) = ctx.extract_bytes(b, None, 1.0);
        assert_eq!(hit2, 0.0);
        assert!((miss2 - hit).abs() < 1e-9);
    }
}
