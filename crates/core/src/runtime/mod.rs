//! Epoch co-simulations for every system design.
//!
//! All simulators consume the same inputs: a recorded [`EpochTrace`]
//! (real sampling, exact quantities), a memory plan (capacity accounting)
//! and the calibrated [`CostModel`]. They differ only in *structure* —
//! which device does what, in what order, sharing what — which is exactly
//! the paper's claim about where performance comes from.
//!
//! [`run_system`] is the front door: it profiles, allocates GPUs (for
//! GNNLab), and dispatches to the right simulator.

mod agl;
mod context;
mod factored;
mod preprocess;
mod single_gpu;
mod timeshare;

pub use agl::run_agl_epoch;
pub use context::{build_cache_table, SimContext};
pub use factored::{
    profile_stage_times, run_factored_epoch, run_factored_epoch_opts, FactoredOptions, StageTimes,
};
pub use preprocess::{preprocess_report, PreprocessReport};
pub use single_gpu::run_single_gpu_epoch;
pub use timeshare::run_timeshare_epoch;

use crate::report::{EpochReport, RunError};
use crate::schedule::num_samplers;
use crate::systems::SystemKind;
use crate::trace::EpochTrace;
use gnnlab_tensor::ModelKind;

/// Runs one epoch of `system` on the context's workload and GPU count,
/// handling profiling and GPU allocation for GNNLab.
///
/// Returns the Table 4 entry: an [`EpochReport`] or the `OOM`/`×` error.
pub fn run_system(ctx: &SimContext<'_>) -> Result<EpochReport, RunError> {
    match ctx.system {
        SystemKind::PygLike if ctx.workload.model == ModelKind::PinSage => Err(
            RunError::Unsupported("PyG does not support PinSAGE".to_string()),
        ),
        SystemKind::PygLike | SystemKind::DglLike | SystemKind::TSota => {
            let trace = EpochTrace::record(ctx.workload, ctx.system.kernel(), ctx.epoch);
            run_timeshare_epoch(ctx, &trace)
        }
        SystemKind::GnnLab => {
            let trace = EpochTrace::record(ctx.workload, ctx.system.kernel(), ctx.epoch);
            if ctx.testbed.num_gpus == 1 {
                return run_single_gpu_epoch(ctx, &trace);
            }
            let times = profile_stage_times(ctx, &trace)?;
            let ns = num_samplers(ctx.testbed.num_gpus, times.t_sample, times.t_trainer);
            let nt = ctx.testbed.num_gpus - ns;
            run_factored_epoch(ctx, &trace, ns, nt, true)
        }
    }
}
