//! GNNLab on a single GPU (§7.9): alternate Sampler and Trainer roles.
//!
//! "This could be seen as a special case of dynamic switching, where the
//! solo GPU is used by alternating between graph sampling (Sampler) and
//! model training (Trainer), switching once an epoch. Storing all samples
//! of an epoch in the global queue located at host memory is affordable."

use super::context::{build_cache_table, SimContext};
use crate::memory::plan_single_gpu;
use crate::report::{EpochReport, RunError};
use crate::systems::SystemKind;
use crate::trace::EpochTrace;
use gnnlab_cache::CacheStats;
use gnnlab_obs::{names, Executor, Stage};
use gnnlab_sim::{ns_to_secs, GatherPath, SampleDevice, SimTime};

/// Simulates one GNNLab epoch on a single GPU.
///
/// Phase 1: sample every mini-batch (topology resident), pushing samples
/// into the host queue. Phase 2: the standby Trainer consumes them with
/// pipelined Extract/Train; the sampling workspace is released first, so
/// the cache ratio is what remains after topology + training workspace.
pub fn run_single_gpu_epoch(
    ctx: &SimContext<'_>,
    trace: &EpochTrace,
) -> Result<EpochReport, RunError> {
    let plan = plan_single_gpu(&ctx.testbed, ctx.workload)?;
    let cache = build_cache_table(ctx.workload, ctx.policy, plan.cache_alpha);
    let factor = trace.factor;
    let row_bytes = ctx.workload.dataset.row_bytes();

    let mut report = EpochReport::new(SystemKind::GnnLab);
    report.cache_ratio = plan.cache_alpha;
    report.num_samplers = 1;
    report.num_trainers = 1;
    report.switched_batches = trace.num_batches();
    let mut stats = CacheStats::default();

    // Phase 1: sample everything.
    let mut clock: SimTime = 0;
    let mut enqueues: Vec<(SimTime, usize)> = Vec::new();
    for (i, b) in trace.batches.iter().enumerate() {
        let g = ctx
            .cost
            .sample_time(&ctx.sample_cost(b, trace), SampleDevice::Gpu);
        let m = ctx.cost.mark_time(b.input_nodes.len() as f64 * factor);
        let c = ctx.cost.queue_time(b.queue_bytes as f64 * factor);
        let t0 = clock;
        clock += g + m + c;
        report.stages.sample_g += ns_to_secs(g);
        report.stages.sample_m += ns_to_secs(m);
        report.stages.sample_c += ns_to_secs(c);
        if let Some(obs) = ctx.obs {
            let b_id = i as u64;
            obs.record_span(0, Executor::Sampler, Stage::SampleG, b_id, t0, t0 + g);
            obs.record_span(
                0,
                Executor::Sampler,
                Stage::SampleM,
                b_id,
                t0 + g,
                t0 + g + m,
            );
            obs.record_span(
                0,
                Executor::Sampler,
                Stage::SampleC,
                b_id,
                t0 + g + m,
                t0 + g + m + c,
            );
            obs.metrics.counter_inc(names::QUEUE_ENQUEUED);
            enqueues.push((clock, i));
        }
    }

    // Phase 2: pipelined Extract/Train over the stored samples.
    let mut extract_free = clock;
    let mut train_free = clock;
    let mut dequeues: Vec<SimTime> = Vec::new();
    for (i, b) in trace.batches.iter().enumerate() {
        let deq = ctx.cost.queue_time(b.queue_bytes as f64 * factor);
        let (miss, hit) = ctx.extract_bytes(b, Some(&cache), factor);
        let e = ctx.cost.extract_time(miss, hit, GatherPath::GpuDirect, 1);
        let t = ctx.cost.train_time(b.flops * factor);
        let extract_done = extract_free + deq + e;
        let train_start = train_free.max(extract_done);
        let train_done = train_start + t;
        if let Some(obs) = ctx.obs {
            // The solo GPU alternates roles once per epoch; phase 2 is the
            // standby-Trainer half of the switch.
            let b_id = i as u64;
            obs.record_span(
                0,
                Executor::Standby,
                Stage::Extract,
                b_id,
                extract_done - e,
                extract_done,
            );
            obs.record_span(
                0,
                Executor::Standby,
                Stage::Train,
                b_id,
                train_start,
                train_done,
            );
            obs.metrics.counter_inc(names::QUEUE_DEQUEUED);
            obs.metrics.counter_inc(names::SCHEDULER_SWITCHES);
            obs.metrics.counter_add(names::CACHE_HIT_BYTES, hit);
            obs.metrics.counter_add(names::CACHE_MISS_BYTES, miss);
            if hit + miss > 0.0 {
                obs.metrics
                    .observe(names::CACHE_BATCH_HIT_RATE, hit / (hit + miss));
            }
            dequeues.push(extract_free + deq);
        }
        extract_free = extract_done;
        train_free = train_done;
        report.stages.extract += ns_to_secs(e);
        report.stages.train += ns_to_secs(t);
        report.transferred_bytes += miss;
        stats.record(&cache, &b.input_nodes, row_bytes);
    }
    report.hit_rate = stats.hit_rate();
    report.epoch_time = ns_to_secs(train_free);
    if let Some(obs) = ctx.obs {
        stats.publish(&obs.metrics);
        super::factored::record_queue_depth(obs, &enqueues, &dequeues);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_timeshare_epoch;
    use crate::workload::Workload;
    use gnnlab_graph::{DatasetKind, Scale};
    use gnnlab_sampling::Kernel;
    use gnnlab_tensor::ModelKind;

    fn workload(ds: DatasetKind) -> Workload {
        Workload::new(ModelKind::GraphSage, ds, Scale::new(4096), 1)
    }

    #[test]
    fn single_gpu_beats_dgl_single_gpu() {
        // Fig. 17b: GNNLab on one GPU outperforms DGL by enabling the
        // cache (and T_SOTA except on PR).
        let w = workload(DatasetKind::Papers);
        let gnnlab_ctx = SimContext::new(&w, SystemKind::GnnLab).with_gpus(1);
        let t_fy = EpochTrace::record(&w, Kernel::FisherYates, gnnlab_ctx.epoch);
        let gnnlab = run_single_gpu_epoch(&gnnlab_ctx, &t_fy).unwrap();

        let dgl_ctx = SimContext::new(&w, SystemKind::DglLike).with_gpus(1);
        let t_rs = EpochTrace::record(&w, Kernel::Reservoir, dgl_ctx.epoch);
        let dgl = run_timeshare_epoch(&dgl_ctx, &t_rs).unwrap();

        assert!(
            gnnlab.epoch_time < dgl.epoch_time / 1.5,
            "gnnlab {} dgl {}",
            gnnlab.epoch_time,
            dgl.epoch_time
        );
    }

    #[test]
    fn all_batches_are_marked_switched() {
        let w = workload(DatasetKind::Products);
        let ctx = SimContext::new(&w, SystemKind::GnnLab).with_gpus(1);
        let t = EpochTrace::record(&w, Kernel::FisherYates, ctx.epoch);
        let rep = run_single_gpu_epoch(&ctx, &t).unwrap();
        assert_eq!(rep.switched_batches, t.num_batches());
        assert!(rep.hit_rate > 0.9); // PR fits entirely.
    }

    #[test]
    fn phases_are_serialized() {
        // Epoch time >= sample phase + train-dominated phase lower bound.
        let w = workload(DatasetKind::Papers);
        let ctx = SimContext::new(&w, SystemKind::GnnLab).with_gpus(1);
        let t = EpochTrace::record(&w, Kernel::FisherYates, ctx.epoch);
        let rep = run_single_gpu_epoch(&ctx, &t).unwrap();
        assert!(rep.epoch_time >= rep.stages.sample_total() + rep.stages.train - 1e-9);
    }
}
