//! The factored GNNLab epoch co-simulation (§5).
//!
//! Samplers and Trainers run on dedicated GPUs, bridged by the host-memory
//! global queue. A global scheduler hands mini-batches to the next free
//! Sampler; Trainers pipeline Extract and Train; standby Trainers on
//! Sampler GPUs wake via the profit metric once their Sampler has drained
//! the epoch's batches (dynamic switching, §5.3).

use super::context::{build_cache_table, SimContext};
use crate::faults::{ExecutorRole, FaultPlan};
use crate::memory::{plan_sampler_gpu, plan_timeshare_gpu, plan_trainer_gpu};
use crate::report::{EpochReport, RunError};
use crate::schedule::switch_profit;
use crate::systems::SystemKind;
use crate::trace::EpochTrace;
use gnnlab_cache::{CacheStats, CacheTable};
use gnnlab_obs::{names, Executor, Stage};
use gnnlab_sim::{ns_to_secs, GatherPath, SampleDevice, SimTime};

/// Profiled per-mini-batch stage times (seconds) for the allocation rule.
#[derive(Debug, Clone, Copy)]
pub struct StageTimes {
    /// Sampler per-batch time `T_s` (G + M + C).
    pub t_sample: f64,
    /// Trainer per-batch time `T_t` (pipelined: max(extract, train)).
    pub t_trainer: f64,
    /// Standby-Trainer per-batch time `T_t'` (smaller cache), infinite if
    /// no standby Trainer fits on the Sampler GPU.
    pub t_standby: f64,
}

/// Profiles `T_s`, `T_t`, `T_t'` from a recorded epoch — the paper's
/// "training an epoch in advance" (§5.3).
pub fn profile_stage_times(
    ctx: &SimContext<'_>,
    trace: &EpochTrace,
) -> Result<StageTimes, RunError> {
    plan_sampler_gpu(&ctx.testbed, ctx.workload)?;
    let trainer_plan = plan_trainer_gpu(&ctx.testbed, ctx.workload)?;
    let trainer_cache = build_cache_table(ctx.workload, ctx.policy, trainer_plan.cache_alpha);
    let standby_plan = plan_timeshare_gpu(&ctx.testbed, ctx.workload, SystemKind::GnnLab, true);
    let standby_cache = standby_plan
        .ok()
        .map(|p| build_cache_table(ctx.workload, ctx.policy, p.cache_alpha));

    let factor = trace.factor;
    let n = trace.num_batches().max(1) as f64;
    let mut t_sample = 0.0;
    let mut t_trainer = 0.0;
    let mut t_standby = 0.0;
    for b in &trace.batches {
        let g = ctx
            .cost
            .sample_time(&ctx.sample_cost(b, trace), SampleDevice::Gpu);
        let m = ctx.cost.mark_time(b.input_nodes.len() as f64 * factor);
        let c = ctx.cost.queue_time(b.queue_bytes as f64 * factor);
        t_sample += ns_to_secs(g + m + c);

        let (miss, hit) = ctx.extract_bytes(b, Some(&trainer_cache), factor);
        let e = ctx.cost.extract_time(miss, hit, GatherPath::GpuDirect, 1);
        let t = ctx.cost.train_time(b.flops * factor);
        t_trainer += ns_to_secs(e.max(t));

        if let Some(sc) = &standby_cache {
            let (miss, hit) = ctx.extract_bytes(b, Some(sc), factor);
            let e = ctx.cost.extract_time(miss, hit, GatherPath::GpuDirect, 1);
            t_standby += ns_to_secs(e.max(t));
        }
    }
    Ok(StageTimes {
        t_sample: t_sample / n,
        t_trainer: t_trainer / n,
        t_standby: if standby_cache.is_some() {
            t_standby / n
        } else {
            f64::INFINITY
        },
    })
}

/// One executor's pipelined clocks.
#[derive(Debug, Clone, Copy)]
struct TrainerClock {
    extract_free: SimTime,
    train_free: SimTime,
    /// Time this executor becomes available at all (0 for normal Trainers;
    /// the Sampler-done time for standby Trainers).
    available_from: SimTime,
    is_standby: bool,
}

/// Knobs of the factored epoch simulation beyond the GPU split.
#[derive(Debug, Clone)]
pub struct FactoredOptions {
    /// GPUs allocated to Samplers (≥ 1).
    pub num_samplers: usize,
    /// GPUs allocated to Trainers (≥ 1; the single-GPU alternating mode
    /// lives in [`super::run_single_gpu_epoch`]).
    pub num_trainers: usize,
    /// Whether standby Trainers may wake via the profit metric (§5.3).
    pub enable_switching: bool,
    /// Per-Sampler slowdown factors (multi-tenant contention, §5.3);
    /// missing entries default to 1.0.
    pub sampler_slowdown: Vec<f64>,
    /// Per-Trainer slowdown factors; missing entries default to 1.0.
    pub trainer_slowdown: Vec<f64>,
    /// Whether Trainers overlap Extract with Train (§5.2 pipelining);
    /// `false` serializes the two stages — the ablation knob.
    pub pipelining: bool,
    /// The fault plan: simulated device failures
    /// ([`crate::faults::DeviceFail`], devices `0..ns` are Samplers,
    /// `ns..ns+nt` Trainers) kill an executor at a virtual time; its
    /// in-flight batch is re-dispatched to a survivor and the epoch
    /// re-balances mid-flight. Plan stragglers compound with the
    /// `*_slowdown` vectors.
    pub faults: FaultPlan,
}

impl FactoredOptions {
    /// Standard options for an `ns`×`nt` split.
    pub fn new(ns: usize, nt: usize) -> Self {
        FactoredOptions {
            num_samplers: ns,
            num_trainers: nt,
            enable_switching: true,
            sampler_slowdown: Vec::new(),
            trainer_slowdown: Vec::new(),
            pipelining: true,
            faults: FaultPlan::none(),
        }
    }
}

/// Reconstructs the global queue's depth-over-time series from the
/// virtual-time enqueue (`ready`) and dequeue (arrival) instants, sampling
/// `queue.depth` at every event (enqueues win ties: a sample is in the
/// queue the instant it becomes ready).
pub(crate) fn record_queue_depth(
    obs: &gnnlab_obs::Obs,
    enqueues: &[(SimTime, usize)],
    dequeues: &[SimTime],
) {
    let mut enq: Vec<SimTime> = enqueues.iter().map(|&(t, _)| t).collect();
    enq.sort_unstable();
    let mut deq = dequeues.to_vec();
    deq.sort_unstable();
    let (mut i, mut j) = (0usize, 0usize);
    let mut depth: i64 = 0;
    while i < enq.len() || j < deq.len() {
        let take_enq = j >= deq.len() || (i < enq.len() && enq[i] <= deq[j]);
        let t = if take_enq {
            depth += 1;
            i += 1;
            enq[i - 1]
        } else {
            depth -= 1;
            j += 1;
            deq[j - 1]
        };
        obs.metrics.sample(names::QUEUE_DEPTH, t, depth as f64);
        obs.metrics.gauge_set(names::QUEUE_DEPTH, depth as f64);
    }
}

fn slowdown(of: &[f64], i: usize) -> f64 {
    of.get(i).copied().unwrap_or(1.0).max(1e-6)
}

fn scaled(d: SimTime, f: f64) -> SimTime {
    (d as f64 * f).round() as SimTime
}

/// Simulates one factored epoch with `ns` Samplers and `nt` Trainers.
pub fn run_factored_epoch(
    ctx: &SimContext<'_>,
    trace: &EpochTrace,
    ns: usize,
    nt: usize,
    enable_switching: bool,
) -> Result<EpochReport, RunError> {
    let mut opts = FactoredOptions::new(ns, nt);
    opts.enable_switching = enable_switching;
    run_factored_epoch_opts(ctx, trace, &opts)
}

/// Simulates one factored epoch with full [`FactoredOptions`] control.
pub fn run_factored_epoch_opts(
    ctx: &SimContext<'_>,
    trace: &EpochTrace,
    opts: &FactoredOptions,
) -> Result<EpochReport, RunError> {
    let (ns, nt) = (opts.num_samplers, opts.num_trainers);
    let enable_switching = opts.enable_switching;
    assert!(ns >= 1, "need at least one Sampler");
    assert!(nt >= 1, "need at least one Trainer");
    plan_sampler_gpu(&ctx.testbed, ctx.workload)?;
    let trainer_plan = plan_trainer_gpu(&ctx.testbed, ctx.workload)?;
    let trainer_cache = build_cache_table(ctx.workload, ctx.policy, trainer_plan.cache_alpha);
    // Standby Trainers co-reside with Samplers: topology stays loaded, so
    // their cache is what's left after topology + both workspaces. If that
    // plan does not fit, switching is simply unavailable.
    let standby_plan = plan_timeshare_gpu(&ctx.testbed, ctx.workload, SystemKind::GnnLab, true);
    let standby_cache: Option<CacheTable> = if enable_switching {
        standby_plan
            .ok()
            .map(|p| build_cache_table(ctx.workload, ctx.policy, p.cache_alpha))
    } else {
        None
    };

    let factor = trace.factor;
    let row_bytes = ctx.workload.dataset.row_bytes();
    let mut report = EpochReport::new(SystemKind::GnnLab);
    report.cache_ratio = trainer_plan.cache_alpha;
    report.num_samplers = ns;
    report.num_trainers = nt;

    // --- Phase 1: Samplers drain the epoch's mini-batches. -----------------
    // The global scheduler hands the next batch to the earliest-free
    // *live* Sampler (dynamic assignment, §5.2). A device failure kills a
    // Sampler at its planned virtual time; the batch it was working on is
    // re-dispatched to a survivor (the replay), and losing the last
    // Sampler mid-epoch is an [`RunError::ExecutorsLost`].
    let mut sampler_free = vec![0u64; ns];
    let mut sampler_alive = vec![true; ns];
    let sampler_fail: Vec<Option<SimTime>> =
        (0..ns).map(|s| opts.faults.device_fail_ns(s)).collect();
    let mut ready: Vec<(SimTime, usize)> = Vec::with_capacity(trace.num_batches());
    for (i, b) in trace.batches.iter().enumerate() {
        loop {
            let Some(s) = (0..ns)
                .filter(|&s| sampler_alive[s])
                .min_by_key(|&s| sampler_free[s])
            else {
                return Err(RunError::ExecutorsLost {
                    detail: format!(
                        "device failures killed every Sampler before batch {i} of {}",
                        trace.num_batches()
                    ),
                });
            };
            let f = slowdown(&opts.sampler_slowdown, s)
                * opts.faults.slowdown(ExecutorRole::Sampler, s);
            let g = scaled(
                ctx.cost
                    .sample_time(&ctx.sample_cost(b, trace), SampleDevice::Gpu),
                f,
            );
            let m = scaled(ctx.cost.mark_time(b.input_nodes.len() as f64 * factor), f);
            let c = scaled(ctx.cost.queue_time(b.queue_bytes as f64 * factor), f);
            let t0 = sampler_free[s];
            let finish = t0 + g + m + c;
            if let Some(fail_at) = sampler_fail[s] {
                if finish > fail_at {
                    // The device dies mid-batch: the partial work is lost
                    // and the batch goes back to the scheduler.
                    sampler_alive[s] = false;
                    sampler_free[s] = sampler_free[s].max(fail_at);
                    report.failed_devices += 1;
                    report.replayed_batches += 1;
                    if let Some(obs) = ctx.obs {
                        obs.metrics.counter_inc(names::FAULTS_INJECTED);
                        obs.metrics.counter_inc(names::RECOVERY_REPLAYED_BATCHES);
                        obs.metrics.counter_inc(names::RECOVERY_REASSIGNMENTS);
                        obs.metrics.counter_add(
                            names::RECOVERY_DOWNTIME_NS,
                            fail_at.saturating_sub(t0) as f64,
                        );
                    }
                    continue;
                }
            }
            sampler_free[s] = finish;
            ready.push((finish, i));
            report.stages.sample_g += ns_to_secs(g);
            report.stages.sample_m += ns_to_secs(m);
            report.stages.sample_c += ns_to_secs(c);
            if let Some(obs) = ctx.obs {
                let (d, b_id) = (s as u32, i as u64);
                obs.record_span(d, Executor::Sampler, Stage::SampleG, b_id, t0, t0 + g);
                obs.record_span(
                    d,
                    Executor::Sampler,
                    Stage::SampleM,
                    b_id,
                    t0 + g,
                    t0 + g + m,
                );
                obs.record_span(
                    d,
                    Executor::Sampler,
                    Stage::SampleC,
                    b_id,
                    t0 + g + m,
                    t0 + g + m + c,
                );
                obs.metrics.counter_inc(names::QUEUE_ENQUEUED);
            }
            break;
        }
    }
    ready.sort_by_key(|&(t, i)| (t, i));

    // --- Phase 2: Trainers consume samples as they become ready. -----------
    let mut clocks: Vec<TrainerClock> = (0..nt)
        .map(|_| TrainerClock {
            extract_free: 0,
            train_free: 0,
            available_from: 0,
            is_standby: false,
        })
        .collect();
    // Per-clock fail times and global devices from the fault plan:
    // Trainer clocks map to devices `ns..ns+nt`; standby clocks run on
    // their Sampler's GPU (and never materialize on a Sampler that
    // already died).
    let mut clock_fail: Vec<Option<SimTime>> = (0..nt)
        .map(|t| opts.faults.device_fail_ns(ns + t))
        .collect();
    let mut clock_device: Vec<u32> = (0..nt).map(|t| (ns + t) as u32).collect();
    if standby_cache.is_some() {
        for (s, &done) in sampler_free.iter().enumerate() {
            if !sampler_alive[s] {
                continue;
            }
            clocks.push(TrainerClock {
                extract_free: done,
                train_free: done,
                available_from: done,
                is_standby: true,
            });
            clock_fail.push(opts.faults.device_fail_ns(s));
            clock_device.push(s as u32);
        }
    }
    let mut clock_alive = vec![true; clocks.len()];
    // Live normal-Trainer count: feeds extraction contention and the
    // profit metric after mid-epoch device losses.
    let mut nt_live = nt;

    // Mean times for the profit metric, from the trainer's perspective.
    let mean_t_train: f64 = {
        let mut acc = 0.0;
        for b in &trace.batches {
            let (miss, hit) = ctx.extract_bytes(b, Some(&trainer_cache), factor);
            let e = ctx.cost.extract_time(miss, hit, GatherPath::GpuDirect, nt);
            let t = ctx.cost.train_time(b.flops * factor);
            acc += ns_to_secs(e.max(t));
        }
        acc / trace.num_batches().max(1) as f64
    };

    let mut stats = CacheStats::default();
    let mut end_time: SimTime = sampler_free.iter().copied().max().unwrap_or(0);
    let total = ready.len();
    // Dequeue times (sample arrival at a Trainer), kept to reconstruct the
    // queue-depth-over-time series when observability is attached.
    let mut dequeues: Vec<SimTime> = Vec::new();
    for (idx, &(ready_at, batch_idx)) in ready.iter().enumerate() {
        let b = &trace.batches[batch_idx];
        let deq = ctx.cost.queue_time(b.queue_bytes as f64 * factor);
        let mut arrival = ready_at + deq;
        let remaining = total - idx;

        // Dispatch loop: re-runs when the chosen executor's device fails
        // mid-batch (the batch returns to the queue at the fail time and
        // a survivor replays it).
        let (start, ci, is_standby, e, t, miss, hit, extract_done, train_start, train_done) = loop {
            // Candidate executors: live normal Trainers always; live
            // standby Trainers only when the profit metric says waking
            // them pays off *now*. Pick the executor with the earliest
            // predicted *completion* — extract availability alone would
            // funnel everything to one Trainer whenever extraction is
            // cheap (high hit rates).
            let mut best: Option<(SimTime, SimTime, usize, SimTime, SimTime, f64, f64)> = None;
            for (ci, c) in clocks.iter().enumerate() {
                if !clock_alive[ci] {
                    continue;
                }
                let cache = if c.is_standby {
                    match &standby_cache {
                        Some(sc) => sc,
                        None => continue,
                    }
                } else {
                    &trainer_cache
                };
                let f = if c.is_standby {
                    1.0
                } else {
                    slowdown(&opts.trainer_slowdown, ci)
                        * opts.faults.slowdown(ExecutorRole::Trainer, ci)
                };
                let (miss, hit) = ctx.extract_bytes(b, Some(cache), factor);
                let e = scaled(
                    ctx.cost
                        .extract_time(miss, hit, GatherPath::GpuDirect, nt_live.max(1)),
                    f,
                );
                let t = scaled(ctx.cost.train_time(b.flops * factor), f);
                if c.is_standby {
                    let t_standby = ns_to_secs(e.max(t));
                    // The profit metric P = M_r * T_t / N_t - T_t' (§5.3);
                    // the standby Trainer is a candidate iff P > 0.
                    let profit = switch_profit(remaining, mean_t_train, nt_live.max(1), t_standby);
                    if let Some(obs) = ctx.obs {
                        obs.metrics
                            .sample(names::SCHEDULER_SWITCH_PROFIT, arrival, profit);
                        obs.metrics.observe(names::SCHEDULER_SWITCH_PROFIT, profit);
                    }
                    if profit <= 0.0 {
                        if let Some(obs) = ctx.obs {
                            obs.metrics.counter_inc(names::SCHEDULER_SWITCH_DENIED);
                        }
                        continue;
                    }
                }
                let start = c.extract_free.max(arrival).max(c.available_from);
                let completion = c.train_free.max(start + e) + t;
                let better = match best {
                    None => true,
                    Some((bc, _, bi, ..)) => {
                        completion < bc
                            || (completion == bc && clocks[bi].is_standby && !c.is_standby)
                    }
                };
                if better {
                    best = Some((completion, start, ci, e, t, miss, hit));
                }
            }
            // Satellite of the fault-tolerance story: running out of
            // Trainers is a typed error, not a panic — reachable when
            // device failures consume the whole Trainer pool and no
            // standby is eligible.
            let Some((_, start, ci, e, t, miss, hit)) = best else {
                return Err(RunError::ExecutorsLost {
                    detail: format!(
                        "device failures left no Trainer for batch {batch_idx} \
                         ({} of {} dispatched)",
                        idx, total
                    ),
                });
            };
            let extract_done = start + e;
            let train_start = clocks[ci].train_free.max(extract_done);
            let train_done = train_start + t;
            if let Some(fail_at) = clock_fail[ci] {
                if train_done > fail_at {
                    // The device dies mid-batch: partial Extract/Train
                    // work is lost, the batch re-enters the queue at the
                    // fail instant, and the scheduler re-balances on the
                    // survivors.
                    clock_alive[ci] = false;
                    if !clocks[ci].is_standby {
                        nt_live = nt_live.saturating_sub(1);
                    }
                    report.failed_devices += 1;
                    report.replayed_batches += 1;
                    if let Some(obs) = ctx.obs {
                        obs.metrics.counter_inc(names::FAULTS_INJECTED);
                        obs.metrics.counter_inc(names::RECOVERY_REPLAYED_BATCHES);
                        obs.metrics.counter_inc(names::RECOVERY_REASSIGNMENTS);
                        obs.metrics.counter_add(
                            names::RECOVERY_DOWNTIME_NS,
                            fail_at.saturating_sub(start) as f64,
                        );
                    }
                    arrival = arrival.max(fail_at);
                    continue;
                }
            }
            break (
                start,
                ci,
                clocks[ci].is_standby,
                e,
                t,
                miss,
                hit,
                extract_done,
                train_start,
                train_done,
            );
        };
        // With pipelining, the next Extract may start while this batch
        // trains; without it, the executor is busy until Train completes.
        clocks[ci].extract_free = if opts.pipelining {
            extract_done
        } else {
            train_done
        };
        clocks[ci].train_free = train_done;
        end_time = end_time.max(train_done);

        report.stages.extract += ns_to_secs(e);
        report.stages.train += ns_to_secs(t);
        report.transferred_bytes += miss;
        if is_standby {
            report.switched_batches += 1;
        } else {
            stats.record(&trainer_cache, &b.input_nodes, row_bytes);
        }
        if let Some(obs) = ctx.obs {
            // Standby Trainers run on their Sampler's GPU; normal Trainers
            // occupy the GPUs after the Sampler block.
            let device = clock_device[ci];
            let executor = if is_standby {
                Executor::Standby
            } else {
                Executor::Trainer
            };
            let b_id = batch_idx as u64;
            obs.record_span(device, executor, Stage::Extract, b_id, start, extract_done);
            obs.record_span(
                device,
                executor,
                Stage::Train,
                b_id,
                train_start,
                train_done,
            );
            obs.metrics.counter_inc(names::QUEUE_DEQUEUED);
            obs.metrics
                .observe(names::QUEUE_WAIT_NS, (start - arrival) as f64);
            obs.metrics.counter_add(names::CACHE_HIT_BYTES, hit);
            obs.metrics.counter_add(names::CACHE_MISS_BYTES, miss);
            if hit + miss > 0.0 {
                obs.metrics
                    .observe(names::CACHE_BATCH_HIT_RATE, hit / (hit + miss));
            }
            if is_standby {
                obs.metrics.counter_inc(names::SCHEDULER_SWITCHES);
            }
            dequeues.push(arrival);
        }
    }
    report.hit_rate = stats.hit_rate();
    report.epoch_time = ns_to_secs(end_time);
    if let Some(obs) = ctx.obs {
        stats.publish(&obs.metrics);
        record_queue_depth(obs, &ready, &dequeues);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use gnnlab_graph::{DatasetKind, Scale};
    use gnnlab_tensor::ModelKind;

    fn workload(model: ModelKind, ds: DatasetKind) -> Workload {
        Workload::new(model, ds, Scale::new(4096), 1)
    }

    fn ctx(w: &Workload) -> SimContext<'_> {
        SimContext::new(w, SystemKind::GnnLab)
    }

    fn trace(w: &Workload, ctx: &SimContext<'_>) -> EpochTrace {
        EpochTrace::record(w, SystemKind::GnnLab.kernel(), ctx.epoch)
    }

    #[test]
    fn factored_runs_uk_where_timeshare_ooms() {
        let w = workload(ModelKind::Gcn, DatasetKind::Uk);
        let c = ctx(&w);
        let t = trace(&w, &c);
        let rep = run_factored_epoch(&c, &t, 2, 6, true).unwrap();
        assert!(rep.epoch_time > 0.0);
        assert!(rep.cache_ratio > 0.10, "α {}", rep.cache_ratio);
    }

    #[test]
    fn profile_produces_finite_times() {
        let w = workload(ModelKind::GraphSage, DatasetKind::Papers);
        let c = ctx(&w);
        let t = trace(&w, &c);
        let st = profile_stage_times(&c, &t).unwrap();
        assert!(st.t_sample > 0.0 && st.t_sample.is_finite());
        assert!(st.t_trainer > 0.0 && st.t_trainer.is_finite());
        // Standby fits for PA + GraphSAGE.
        assert!(st.t_standby.is_finite());
        // Training a batch takes longer than sampling it (K > 1).
        assert!(st.t_trainer > st.t_sample);
    }

    #[test]
    fn more_trainers_shrink_epoch_until_sampler_binds() {
        let w = workload(ModelKind::Gcn, DatasetKind::Papers);
        let c = ctx(&w);
        let t = trace(&w, &c);
        let e2 = run_factored_epoch(&c, &t, 1, 2, false).unwrap().epoch_time;
        let e5 = run_factored_epoch(&c, &t, 1, 5, false).unwrap().epoch_time;
        assert!(e5 < e2, "2T {e2} vs 5T {e5}");
    }

    #[test]
    fn switching_helps_skewed_workloads() {
        // PinSAGE on PA with 1 Sampler + 1 Trainer: K ~ 10, so the Sampler
        // GPU idles massively without switching (Fig. 17a).
        let w = workload(ModelKind::PinSage, DatasetKind::Papers);
        let c = ctx(&w);
        let t = trace(&w, &c);
        let without = run_factored_epoch(&c, &t, 1, 1, false).unwrap();
        let with = run_factored_epoch(&c, &t, 1, 1, true).unwrap();
        assert_eq!(without.switched_batches, 0);
        assert!(with.switched_batches > 0, "no batches switched");
        assert!(
            with.epoch_time < 0.8 * without.epoch_time,
            "with {} without {}",
            with.epoch_time,
            without.epoch_time
        );
    }

    #[test]
    fn switching_is_a_noop_when_balanced() {
        // With plenty of Trainers the queue never backs up enough for the
        // profit metric to fire meaningfully.
        let w = workload(ModelKind::PinSage, DatasetKind::Papers);
        let c = ctx(&w);
        let t = trace(&w, &c);
        let with = run_factored_epoch(&c, &t, 1, 7, true).unwrap();
        let without = run_factored_epoch(&c, &t, 1, 7, false).unwrap();
        let ratio = with.epoch_time / without.epoch_time;
        assert!(
            ratio < 1.05,
            "switching slowed a balanced workload: {ratio}"
        );
    }

    #[test]
    fn trainer_device_failure_replays_and_finishes() {
        let w = workload(ModelKind::Gcn, DatasetKind::Papers);
        let c = ctx(&w);
        let t = trace(&w, &c);
        let baseline = run_factored_epoch(&c, &t, 1, 3, false).unwrap();
        assert_eq!(baseline.failed_devices, 0);
        assert_eq!(baseline.replayed_batches, 0);
        let mut opts = FactoredOptions::new(1, 3);
        opts.enable_switching = false;
        // Kill Trainer 1 (global device ns + 1 = 2) halfway through the
        // baseline epoch.
        let mid = (baseline.epoch_time * 0.5 * 1e9) as u64;
        opts.faults = FaultPlan::none().with_device_failure(mid, 2);
        let rep = run_factored_epoch_opts(&c, &t, &opts).unwrap();
        assert_eq!(rep.failed_devices, 1);
        assert!(rep.replayed_batches >= 1, "{:?}", rep.replayed_batches);
        // Survivors absorb the dead device's share, so the epoch finishes
        // but no faster than the healthy run.
        assert!(
            rep.epoch_time >= baseline.epoch_time,
            "failed {} vs healthy {}",
            rep.epoch_time,
            baseline.epoch_time
        );
    }

    #[test]
    fn losing_every_trainer_is_a_typed_error() {
        let w = workload(ModelKind::Gcn, DatasetKind::Papers);
        let c = ctx(&w);
        let t = trace(&w, &c);
        let mut opts = FactoredOptions::new(1, 1);
        opts.enable_switching = false;
        // The only Trainer (device 1) dies almost immediately.
        opts.faults = FaultPlan::none().with_device_failure(1, 1);
        let err = run_factored_epoch_opts(&c, &t, &opts).unwrap_err();
        assert!(
            matches!(err, RunError::ExecutorsLost { .. }),
            "expected ExecutorsLost, got {err}"
        );
    }

    #[test]
    fn losing_every_sampler_is_a_typed_error() {
        let w = workload(ModelKind::Gcn, DatasetKind::Papers);
        let c = ctx(&w);
        let t = trace(&w, &c);
        let mut opts = FactoredOptions::new(1, 2);
        opts.faults = FaultPlan::none().with_device_failure(1, 0);
        let err = run_factored_epoch_opts(&c, &t, &opts).unwrap_err();
        assert!(
            matches!(err, RunError::ExecutorsLost { .. }),
            "expected ExecutorsLost, got {err}"
        );
    }

    #[test]
    fn gnnlab_cache_ratio_beats_tsota() {
        let w = workload(ModelKind::Gcn, DatasetKind::Twitter);
        let c = ctx(&w);
        let t = trace(&w, &c);
        let rep = run_factored_epoch(&c, &t, 2, 6, false).unwrap();
        let tsota_plan =
            crate::memory::plan_timeshare_gpu(&c.testbed, &w, SystemKind::TSota, true).unwrap();
        assert!(rep.cache_ratio > 1.5 * tsota_plan.cache_alpha);
        assert!(rep.hit_rate > 0.6, "hit rate {}", rep.hit_rate);
    }
}
