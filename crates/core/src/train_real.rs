//! Real data-parallel training to an accuracy target (Fig. 16).
//!
//! The convergence experiment cannot be simulated — it needs actual
//! numerics. This module trains a real model (from `gnnlab-tensor`) on a
//! planted-community graph, with `num_trainers` data-parallel replicas
//! emulated by gradient accumulation over `num_trainers` mini-batches per
//! update (mathematically identical to synchronous all-reduce across that
//! many Trainers). More trainers ⇒ fewer gradient updates per epoch ⇒
//! more epochs to a fixed accuracy — exactly the paper's Fig. 16b effect.

use gnnlab_graph::gen::SbmGraph;
use gnnlab_graph::VertexId;
use gnnlab_sampling::{KHop, Kernel, MinibatchIter, RandomWalk, SamplingAlgorithm, Selection};
use gnnlab_tensor::loss::accuracy;
use gnnlab_tensor::{Adam, GnnModel, Matrix, ModelConfig, ModelKind, Optimizer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of a convergence run.
#[derive(Debug, Clone)]
pub struct ConvergenceConfig {
    /// Stop once test accuracy reaches this.
    pub target_accuracy: f64,
    /// Hard epoch cap.
    pub max_epochs: usize,
    /// Data-parallel width (gradient updates per epoch shrink with this).
    pub num_trainers: usize,
    /// Mini-batch size per trainer.
    pub batch_size: usize,
    /// Hidden dimension.
    pub hidden_dim: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed (splits, shuffles, weights).
    pub seed: u64,
}

impl Default for ConvergenceConfig {
    fn default() -> Self {
        ConvergenceConfig {
            target_accuracy: 0.85,
            max_epochs: 60,
            num_trainers: 1,
            batch_size: 32,
            hidden_dim: 32,
            lr: 0.01,
            seed: 0,
        }
    }
}

/// Result of a convergence run.
#[derive(Debug, Clone)]
pub struct ConvergenceResult {
    /// Epochs needed (== max_epochs if the target was not reached).
    pub epochs: usize,
    /// Total gradient updates performed.
    pub gradient_updates: usize,
    /// Final test accuracy.
    pub final_accuracy: f64,
    /// Whether the target was reached.
    pub converged: bool,
    /// Per-epoch `(cumulative updates, test accuracy)`.
    pub history: Vec<(usize, f64)>,
}

/// The sampler each model uses, for callers that have no [`crate::Workload`]
/// (real-training paths working directly on an [`SbmGraph`]).
pub fn sampler_for(kind: ModelKind) -> Box<dyn SamplingAlgorithm> {
    match kind {
        ModelKind::Gcn => Box::new(KHop::new(
            vec![15, 10, 5],
            Kernel::FisherYates,
            Selection::Uniform,
        )),
        ModelKind::GraphSage => Box::new(KHop::new(
            vec![25, 10],
            Kernel::FisherYates,
            Selection::Uniform,
        )),
        ModelKind::PinSage => Box::new(RandomWalk::pinsage()),
    }
}

/// Gathers feature rows of `ids` into a dense matrix (host-side Extract),
/// fanning disjoint output-row chunks across the global pool. Rows are
/// pure copies, so the matrix is byte-identical at every thread count.
pub fn gather_features(graph: &SbmGraph, ids: &[VertexId]) -> Matrix {
    let d = graph.feat_dim;
    // SAFETY: gather_rows_into writes every row of the buffer exactly once
    // (the chunks below tile it disjointly).
    let mut data = unsafe { gnnlab_par::uninit_f32_vec(ids.len() * d) };
    gnnlab_par::global_pool().par_chunks_mut(&mut data, d, |_, rows, chunk| {
        gnnlab_par::gather_rows_into(&ids[rows], d, chunk, |_, v| {
            let s = v as usize * d;
            &graph.features[s..s + d]
        });
    });
    Matrix::from_vec(ids.len(), d, data)
}

fn labels_of(graph: &SbmGraph, ids: &[VertexId]) -> Vec<u32> {
    ids.iter().map(|&v| graph.labels[v as usize]).collect()
}

/// Evaluates test accuracy by sampling + forwarding the test vertices.
pub fn evaluate(
    graph: &SbmGraph,
    model: &mut GnnModel,
    algo: &dyn SamplingAlgorithm,
    test_set: &[VertexId],
    batch_size: usize,
    seed: u64,
) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xE7A1);
    let mut correct_weighted = 0.0f64;
    let mut total = 0usize;
    for chunk in test_set.chunks(batch_size.max(1)) {
        let sample = algo.sample(&graph.csr, chunk, &mut rng);
        let feats = gather_features(graph, sample.input_nodes());
        let logits = model.forward(&sample, &feats);
        let labels = labels_of(graph, chunk);
        correct_weighted += accuracy(&logits, &labels) * chunk.len() as f64;
        total += chunk.len();
    }
    if total == 0 {
        0.0
    } else {
        correct_weighted / total as f64
    }
}

/// Trains `kind` on `graph` until `cfg.target_accuracy` (or the epoch cap).
pub fn train_to_accuracy(
    graph: &SbmGraph,
    kind: ModelKind,
    cfg: &ConvergenceConfig,
) -> ConvergenceResult {
    let n = graph.csr.num_vertices();
    // Deterministic 50/50 split.
    let all = gnnlab_graph::trainset::random_train_set(n, n / 2, cfg.seed ^ 0x5EED);
    let in_train: std::collections::HashSet<VertexId> = all.iter().copied().collect();
    let train_set = all;
    let test_set: Vec<VertexId> = (0..n as VertexId)
        .filter(|v| !in_train.contains(v))
        .collect();

    let algo = sampler_for(kind);
    let mut model = GnnModel::new(ModelConfig {
        kind,
        in_dim: graph.feat_dim,
        hidden_dim: cfg.hidden_dim,
        num_classes: graph.num_classes,
        seed: cfg.seed,
    });
    let mut opt = Adam::new(cfg.lr);

    let mut updates = 0usize;
    let mut history = Vec::new();
    let mut converged = false;
    let mut epochs = 0usize;
    for epoch in 0..cfg.max_epochs {
        epochs = epoch + 1;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ ((epoch as u64) << 32));
        let batches: Vec<Vec<VertexId>> =
            MinibatchIter::new(&train_set, cfg.batch_size.max(1), cfg.seed, epoch as u64).collect();
        // Each group of `num_trainers` batches is one synchronous update:
        // gradients accumulate (per-replica means), get averaged, and the
        // shared parameters step once.
        for group in batches.chunks(cfg.num_trainers.max(1)) {
            for seeds in group {
                let sample = algo.sample(&graph.csr, seeds, &mut rng);
                let feats = gather_features(graph, sample.input_nodes());
                let labels = labels_of(graph, seeds);
                let _ = model.train_batch(&sample, &feats, &labels);
            }
            let inv = 1.0 / group.len() as f32;
            let mut params = model.params_mut();
            for p in params.iter_mut() {
                p.grad.scale(inv);
            }
            opt.step(&mut params);
            updates += 1;
        }
        let acc = evaluate(
            graph,
            &mut model,
            algo.as_ref(),
            &test_set,
            cfg.batch_size,
            cfg.seed,
        );
        history.push((updates, acc));
        if acc >= cfg.target_accuracy {
            converged = true;
            break;
        }
    }
    let final_accuracy = history.last().map(|&(_, a)| a).unwrap_or(0.0);
    ConvergenceResult {
        epochs,
        gradient_updates: updates,
        final_accuracy,
        converged,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnlab_graph::gen::{sbm, SbmParams};

    fn graph() -> SbmGraph {
        sbm(&SbmParams {
            num_vertices: 800,
            num_classes: 4,
            avg_degree: 12.0,
            intra_prob: 0.9,
            feat_dim: 8,
            noise: 0.8,
            seed: 3,
        })
        .unwrap()
    }

    #[test]
    fn graphsage_converges_on_sbm() {
        let g = graph();
        let res = train_to_accuracy(
            &g,
            ModelKind::GraphSage,
            &ConvergenceConfig {
                target_accuracy: 0.80,
                max_epochs: 30,
                batch_size: 64,
                hidden_dim: 16,
                ..Default::default()
            },
        );
        assert!(
            res.converged,
            "did not converge: final acc {}",
            res.final_accuracy
        );
        assert!(res.epochs <= 30);
        assert!(res.gradient_updates > 0);
    }

    #[test]
    fn more_trainers_means_fewer_updates_per_epoch() {
        let g = graph();
        let base = ConvergenceConfig {
            target_accuracy: 2.0, // never reached: run exactly 2 epochs
            max_epochs: 2,
            batch_size: 50,
            hidden_dim: 8,
            ..Default::default()
        };
        let one = train_to_accuracy(&g, ModelKind::GraphSage, &base.clone());
        let four = train_to_accuracy(
            &g,
            ModelKind::GraphSage,
            &ConvergenceConfig {
                num_trainers: 4,
                ..base
            },
        );
        assert_eq!(one.epochs, 2);
        assert!(
            four.gradient_updates * 3 < one.gradient_updates,
            "1T {} updates vs 4T {}",
            one.gradient_updates,
            four.gradient_updates
        );
    }

    #[test]
    fn accuracy_improves_over_history() {
        let g = graph();
        let res = train_to_accuracy(
            &g,
            ModelKind::GraphSage,
            &ConvergenceConfig {
                target_accuracy: 2.0,
                max_epochs: 10,
                batch_size: 64,
                hidden_dim: 16,
                ..Default::default()
            },
        );
        let first = res.history.first().unwrap().1;
        let last = res.history.last().unwrap().1;
        assert!(last > first, "no improvement: {first} -> {last}");
    }
}
