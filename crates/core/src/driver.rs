//! End-to-end multi-epoch run driver.
//!
//! A training job is preprocessing (Table 6) plus hundreds of epochs
//! (Table 4). This driver composes the two so the amortization argument
//! of §7.6 — "GNNLab only needs to perform (P2) and (P3) once for one GNN
//! training task that usually takes hundreds of epochs" — is a number,
//! not a sentence.

use crate::report::{EpochReport, RunError};
use crate::runtime::{preprocess_report, run_system, PreprocessReport, SimContext};
use crate::trace::EpochTrace;

/// Summary of a full training job (preprocessing + `epochs` epochs).
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Preprocessing phases (P1–P3).
    pub preprocess: PreprocessReport,
    /// The steady-state epoch report (epochs are statistically identical;
    /// the simulator reports one representative epoch).
    pub epoch: EpochReport,
    /// Number of epochs in the job.
    pub epochs: usize,
    /// Total simulated job time: P1 + P2 + P3 + epochs × epoch time.
    pub total_time: f64,
    /// Fraction of the job spent in preprocessing.
    pub preprocess_fraction: f64,
}

/// Runs a full job of `epochs` epochs for the context's system.
///
/// Preprocessing is charged once: P1 (disk→DRAM) applies to every system;
/// P2 (topology + cache load) and P3 (pre-sampling) follow the GNNLab
/// pipeline. The returned fractions quantify the §7.6 amortization.
pub fn run_job(ctx: &SimContext<'_>, epochs: usize) -> Result<RunSummary, RunError> {
    assert!(epochs > 0, "a job needs at least one epoch");
    let trace = EpochTrace::record(ctx.workload, ctx.system.kernel(), ctx.epoch);
    let preprocess = preprocess_report(ctx, &trace)?;
    let epoch = run_system(ctx)?;
    let total_time = preprocess.total() + epoch.epoch_time * epochs as f64;
    Ok(RunSummary {
        preprocess_fraction: preprocess.total() / total_time,
        preprocess,
        epochs,
        total_time,
        epoch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::SystemKind;
    use crate::workload::Workload;
    use gnnlab_graph::{DatasetKind, Scale};
    use gnnlab_tensor::ModelKind;

    fn ctx_workload() -> Workload {
        Workload::new(
            ModelKind::GraphSage,
            DatasetKind::Papers,
            Scale::new(4096),
            1,
        )
    }

    #[test]
    fn preprocessing_amortizes_over_long_jobs() {
        let w = ctx_workload();
        let ctx = SimContext::new(&w, SystemKind::GnnLab);
        let short = run_job(&ctx, 1).unwrap();
        let long = run_job(&ctx, 300).unwrap();
        assert!(short.preprocess_fraction > long.preprocess_fraction);
        // §7.6: over a realistic job, preprocessing is a modest share.
        assert!(
            long.preprocess_fraction < 0.5,
            "preprocess fraction {:.2}",
            long.preprocess_fraction
        );
        assert!(
            (long.total_time - (long.preprocess.total() + 300.0 * long.epoch.epoch_time)).abs()
                < 1e-9
        );
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epoch_job_panics() {
        let w = ctx_workload();
        let ctx = SimContext::new(&w, SystemKind::GnnLab);
        let _ = run_job(&ctx, 0);
    }
}
