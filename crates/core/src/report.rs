//! Epoch reports matching the paper's table columns.

use crate::systems::SystemKind;

/// Errors a system run can end with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A GPU memory plan did not fit — Table 4/5's `OOM` cells.
    Oom {
        /// The system whose plan failed.
        system: SystemKind,
        /// Human-readable allocation failure.
        detail: String,
    },
    /// The system does not support this workload — Table 4's `×` cells
    /// (PyG has no PinSAGE).
    Unsupported(String),
    /// Device failures left no executor able to make progress — the fault
    /// plan killed the last capable Sampler or Trainer mid-epoch and no
    /// standby was eligible to take over.
    ExecutorsLost {
        /// Human-readable description of what was lost.
        detail: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Oom { system, detail } => {
                write!(f, "{}: OOM ({detail})", system.label())
            }
            RunError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            RunError::ExecutorsLost { detail } => {
                write!(f, "all executors lost: {detail}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Per-stage time breakdown of one epoch (all values in seconds, summed
/// over all mini-batches — the paper's Table 1/5 convention).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageBreakdown {
    /// Sample stage: graph sampling kernel time (`G` in Table 5).
    pub sample_g: f64,
    /// Sample stage: marking cached vertices (`M`).
    pub sample_m: f64,
    /// Sample stage: copying samples to the host queue (`C`, GNNLab only).
    pub sample_c: f64,
    /// Extract stage total.
    pub extract: f64,
    /// Train stage total.
    pub train: f64,
}

impl StageBreakdown {
    /// Total Sample-stage time (`S = G + M + C`).
    pub fn sample_total(&self) -> f64 {
        self.sample_g + self.sample_m + self.sample_c
    }

    /// Sum of all stages (the serialized lower bound on epoch time for a
    /// single time-sharing GPU).
    pub fn total(&self) -> f64 {
        self.sample_total() + self.extract + self.train
    }
}

/// The result of simulating one epoch of a system.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Which system ran.
    pub system: SystemKind,
    /// Wall-clock epoch time in simulated seconds.
    pub epoch_time: f64,
    /// Stage totals (summed over batches, Table 1/5 convention).
    pub stages: StageBreakdown,
    /// Cache ratio α (`R%` in Table 5), 0 if no cache.
    pub cache_ratio: f64,
    /// Cache hit rate (`H%`), 0 if no cache.
    pub hit_rate: f64,
    /// Feature bytes that crossed PCIe this epoch, paper scale.
    pub transferred_bytes: f64,
    /// GPUs acting as Samplers (GNNLab only; 0 for time-sharing).
    pub num_samplers: usize,
    /// GPUs acting as Trainers (time-sharing: all GPUs).
    pub num_trainers: usize,
    /// Mini-batches consumed by dynamically switched standby Trainers.
    pub switched_batches: usize,
    /// Mini-batches re-dispatched after a simulated device failure killed
    /// the executor working on them.
    pub replayed_batches: usize,
    /// Devices the fault plan killed during the epoch.
    pub failed_devices: usize,
}

impl EpochReport {
    /// Creates an empty report for `system`.
    pub fn new(system: SystemKind) -> Self {
        EpochReport {
            system,
            epoch_time: 0.0,
            stages: StageBreakdown::default(),
            cache_ratio: 0.0,
            hit_rate: 0.0,
            transferred_bytes: 0.0,
            num_samplers: 0,
            num_trainers: 0,
            switched_batches: 0,
            replayed_batches: 0,
            failed_devices: 0,
        }
    }

    /// One-line rendering like the paper's Table 5 row fragment.
    pub fn table5_cell(&self) -> String {
        format!(
            "S={:.2} (G={:.2}+M={:.2}+C={:.2})  E={:.2} (R={:.0}%, H={:.0}%)  T={:.2}",
            self.stages.sample_total(),
            self.stages.sample_g,
            self.stages.sample_m,
            self.stages.sample_c,
            self.stages.extract,
            self.cache_ratio * 100.0,
            self.hit_rate * 100.0,
            self.stages.train,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_totals_add_up() {
        let s = StageBreakdown {
            sample_g: 1.0,
            sample_m: 0.25,
            sample_c: 0.25,
            extract: 2.0,
            train: 3.0,
        };
        assert!((s.sample_total() - 1.5).abs() < 1e-12);
        assert!((s.total() - 6.5).abs() < 1e-12);
    }

    #[test]
    fn errors_render_reasonably() {
        let e = RunError::Oom {
            system: SystemKind::DglLike,
            detail: "topology".to_string(),
        };
        assert!(e.to_string().contains("DGL"));
        assert!(RunError::Unsupported("PinSAGE".into())
            .to_string()
            .contains("PinSAGE"));
    }

    #[test]
    fn table5_cell_formats() {
        let mut r = EpochReport::new(SystemKind::GnnLab);
        r.stages.sample_g = 0.68;
        r.cache_ratio = 0.21;
        r.hit_rate = 0.99;
        let cell = r.table5_cell();
        assert!(cell.contains("R=21%"));
        assert!(cell.contains("H=99%"));
    }
}
