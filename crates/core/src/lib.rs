//! GNNLab's core: the factored runtime, load balancing, and baselines.
//!
//! This crate is the paper's primary contribution, rebuilt on the
//! substrates of the sibling crates:
//!
//! - [`workload`]: a (model, dataset, algorithm) triple with the paper's
//!   hyper-parameters.
//! - [`trace`]: real sampling epochs recorded as per-batch traces (exact
//!   work counters + input-vertex sets) that every system simulation
//!   consumes.
//! - [`memory`]: per-system GPU memory planning — who holds topology, who
//!   holds cache, what cache ratio remains; OOM surfaces here.
//! - [`queue`]: the host-memory global queue bridging Samplers and
//!   Trainers (a real MPMC queue for threaded runs; the co-simulation
//!   models its cost), with batch leases so a crashed consumer's
//!   in-flight work can be replayed.
//! - [`faults`]: deterministic, seeded fault plans (crashes, stragglers,
//!   transient errors, device failures) consumed by both the threaded
//!   runtime and the co-simulations.
//! - [`schedule`]: the GPU allocation rule `N_s = ceil(N_g/(K+1))` and the
//!   dynamic-switching profit metric `P = M_r·T_t/N_t − T_t'` (§5.3).
//! - [`runtime`]: epoch co-simulations — the factored GNNLab runtime,
//!   time-sharing baselines (PyG-like, DGL-like, T_SOTA), the single-GPU
//!   alternating mode (§7.9), the AGL batch-mode alternative (§3), and
//!   preprocessing (Table 6).
//! - [`train_real`]: actual data-parallel training to an accuracy target
//!   (the Fig. 16 convergence experiment).
//! - [`report`]: stage breakdowns and epoch reports matching the paper's
//!   table columns.

//! - [`checkpoint`]: durable crash-safe checkpoint/resume — versioned,
//!   CRC-checked, atomically-written generations plus the manifest-based
//!   latest-valid selection the kill–resume chaos harness exercises.

#[cfg(feature = "chk")]
pub mod broken_queue;
pub mod checkpoint;
pub mod driver;
pub mod faults;
pub mod memory;
pub mod queue;
pub mod report;
pub mod runtime;
pub mod schedule;
pub mod sync;
pub mod systems;
pub mod threaded;
pub mod trace;
pub mod train_real;
pub mod workload;

pub use checkpoint::{ChaosPlan, CheckpointError, CheckpointPolicy};
pub use faults::{ExecutorRole, FaultPlan, RetryPolicy};
pub use report::{EpochReport, RunError, StageBreakdown};
pub use systems::SystemKind;
pub use workload::Workload;
