//! Deterministic, seeded fault plans for the factored runtime.
//!
//! GNNLab's factored design decouples Samplers and Trainers through the
//! host-memory global queue, which means losing one executor does not have
//! to abort the epoch: its in-flight batches can be replayed and its role
//! re-planned on the surviving devices (the §5.2 allocation rule and the
//! §5.3 switching machinery already know how to re-balance). This module
//! is the *description* half of that story: a [`FaultPlan`] says, ahead of
//! time and reproducibly, which executors crash after how many batches,
//! which devices run slow (stragglers), how often transient Extract/Train
//! errors strike, and when whole simulated devices fail. The threaded
//! runtime ([`crate::threaded`]) and the factored co-simulation
//! ([`crate::runtime::run_factored_epoch_opts`]) both consume the same
//! plan, so a failure scenario reproduced in the simulator can be replayed
//! against real threads and vice versa.
//!
//! Everything is a pure function of the plan: transient-error counts and
//! retry jitter derive from `(seed, batch, attempt)` via SplitMix64, so
//! two runs with the same plan inject byte-identical fault sequences.

use std::time::Duration;

/// SplitMix64 finalizer: a bijective avalanche mix (Steele et al.), so
/// nearby inputs map to uncorrelated outputs. Shared with the threaded
/// runtime's per-(role, index) RNG stream derivation.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which kind of executor a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorRole {
    /// A Sampler executor (produces mini-batch samples).
    Sampler,
    /// A Trainer executor (consumes samples; includes respawned Trainers).
    Trainer,
}

/// An executor crash: the targeted executor panics once it has processed
/// `after_batches` batches. Fires at most once per plan (a respawned
/// replacement on the same slot does not re-crash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashFault {
    /// Role of the executor to crash.
    pub role: ExecutorRole,
    /// Slot index of the executor (0-based within its role).
    pub index: usize,
    /// Batches it processes successfully before crashing.
    pub after_batches: usize,
}

/// A persistent per-device slowdown (multi-tenant contention, a dying fan,
/// thermal throttling): every batch on this executor takes `slowdown`
/// times as long.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerFault {
    /// Role of the slowed executor.
    pub role: ExecutorRole,
    /// Slot index of the executor.
    pub index: usize,
    /// Multiplicative slowdown (≥ 1.0; 1.0 = no effect).
    pub slowdown: f64,
}

/// Seeded transient Extract/Train errors: each batch independently suffers
/// a deterministic number of consecutive failures before succeeding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientFaults {
    /// Per-attempt failure probability in `[0, 1)`.
    pub probability: f64,
    /// Upper bound on consecutive failures of one batch, so a plan can
    /// guarantee recoverability (keep it ≤ the retry budget) or force the
    /// unrecoverable path (set it above the budget).
    pub max_consecutive: usize,
}

/// Capped exponential backoff for transient-error retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed per batch before the fault counts as unrecoverable.
    pub max_attempts: usize,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff (before jitter).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(5),
        }
    }
}

/// A whole simulated device failing at an absolute virtual time — the
/// co-simulation's analogue of a GPU falling off the bus. Devices index
/// the factored runtime's global device space: `0..ns` are Samplers,
/// `ns..ns+nt` are Trainers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceFail {
    /// Virtual time (nanoseconds) at which the device dies.
    pub at_ns: u64,
    /// Global device index (Samplers first, then Trainers).
    pub device: usize,
}

/// A deterministic, seeded fault plan consumed by both the threaded
/// runtime and the factored co-simulation. The default plan is empty: no
/// crashes, no stragglers, no transients, no device failures, and a
/// zero respawn budget (any executor panic fails fast, exactly the
/// pre-recovery behavior).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every derived randomness (transient draws, jitter).
    pub seed: u64,
    /// Executor crashes at batch N.
    pub crashes: Vec<CrashFault>,
    /// Per-device slowdown factors.
    pub stragglers: Vec<StragglerFault>,
    /// Transient Extract/Train error process, if any.
    pub transients: Option<TransientFaults>,
    /// Simulated whole-device failures (co-simulation only).
    pub device_failures: Vec<DeviceFail>,
    /// Executor crashes the supervisor may absorb (respawn or reassign)
    /// before falling back to the poison/fail-fast path.
    pub max_respawns: usize,
    /// Retry policy for transient errors.
    pub retry: RetryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: nothing injected, zero respawn budget.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            crashes: Vec::new(),
            stragglers: Vec::new(),
            transients: None,
            device_failures: Vec::new(),
            max_respawns: 0,
            retry: RetryPolicy::default(),
        }
    }

    /// A plan that crashes Trainer `index` after `after_batches` batches,
    /// with a respawn budget of 1 (recoverable by default).
    pub fn crash_trainer(index: usize, after_batches: usize) -> Self {
        FaultPlan {
            crashes: vec![CrashFault {
                role: ExecutorRole::Trainer,
                index,
                after_batches,
            }],
            max_respawns: 1,
            ..Self::none()
        }
    }

    /// A plan that crashes Sampler `index` after `after_batches` batches,
    /// with a respawn budget of 1.
    pub fn crash_sampler(index: usize, after_batches: usize) -> Self {
        FaultPlan {
            crashes: vec![CrashFault {
                role: ExecutorRole::Sampler,
                index,
                after_batches,
            }],
            max_respawns: 1,
            ..Self::none()
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the supervisor's respawn/reassignment budget (builder style).
    pub fn with_max_respawns(mut self, n: usize) -> Self {
        self.max_respawns = n;
        self
    }

    /// Adds a crash fault (builder style).
    pub fn with_crash(mut self, role: ExecutorRole, index: usize, after_batches: usize) -> Self {
        self.crashes.push(CrashFault {
            role,
            index,
            after_batches,
        });
        self
    }

    /// Adds a straggler (builder style).
    pub fn with_straggler(mut self, role: ExecutorRole, index: usize, slowdown: f64) -> Self {
        self.stragglers.push(StragglerFault {
            role,
            index,
            slowdown,
        });
        self
    }

    /// Enables seeded transient Extract/Train errors (builder style).
    pub fn with_transients(mut self, probability: f64, max_consecutive: usize) -> Self {
        self.transients = Some(TransientFaults {
            probability,
            max_consecutive,
        });
        self
    }

    /// Adds a simulated device failure (builder style).
    pub fn with_device_failure(mut self, at_ns: u64, device: usize) -> Self {
        self.device_failures.push(DeviceFail { at_ns, device });
        self
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.stragglers.is_empty()
            && self.transients.is_none()
            && self.device_failures.is_empty()
    }

    /// The crash scheduled for `(role, index)`, as `(crash slot in
    /// [`FaultPlan::crashes`], after_batches)`. The crash slot lets the
    /// runtime arm each crash exactly once across respawns.
    pub fn crash_for(&self, role: ExecutorRole, index: usize) -> Option<(usize, usize)> {
        self.crashes
            .iter()
            .position(|c| c.role == role && c.index == index)
            .map(|i| (i, self.crashes[i].after_batches))
    }

    /// The slowdown factor for `(role, index)`; 1.0 when not a straggler.
    pub fn slowdown(&self, role: ExecutorRole, index: usize) -> f64 {
        self.stragglers
            .iter()
            .find(|s| s.role == role && s.index == index)
            .map_or(1.0, |s| s.slowdown.max(1.0))
    }

    /// How many consecutive transient failures batch `batch` suffers
    /// before succeeding — a pure function of `(seed, batch)`, so retries
    /// converge deterministically.
    pub fn transient_failures(&self, batch: u64) -> usize {
        let Some(t) = self.transients else { return 0 };
        if t.probability <= 0.0 || t.max_consecutive == 0 {
            return 0;
        }
        let mut z = splitmix64(splitmix64(self.seed ^ 0xFA17_F1A6) ^ batch);
        let mut failures = 0;
        while failures < t.max_consecutive {
            z = splitmix64(z);
            // Map the top 53 bits to [0, 1).
            let u = (z >> 11) as f64 / (1u64 << 53) as f64;
            if u < t.probability.min(1.0) {
                failures += 1;
            } else {
                break;
            }
        }
        failures
    }

    /// The backoff before retry number `attempt` (0-based) of `batch`:
    /// capped exponential plus deterministic jitter in `[0, base)`.
    pub fn backoff(&self, attempt: usize, batch: u64) -> Duration {
        let base = self.retry.base_backoff.max(Duration::from_nanos(1));
        let exp = base.saturating_mul(1u32 << attempt.min(20) as u32);
        let capped = exp.min(self.retry.max_backoff.max(base));
        let jitter_ns =
            splitmix64(splitmix64(self.seed ^ 0x00BA_C0FF).wrapping_add(batch) ^ attempt as u64)
                % (base.as_nanos() as u64).max(1);
        capped + Duration::from_nanos(jitter_ns)
    }

    /// Virtual fail time of global device `device`, if the plan kills it.
    pub fn device_fail_ns(&self, device: usize) -> Option<u64> {
        self.device_failures
            .iter()
            .filter(|f| f.device == device)
            .map(|f| f.at_ns)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.max_respawns, 0);
        assert_eq!(p.crash_for(ExecutorRole::Trainer, 0), None);
        assert_eq!(p.slowdown(ExecutorRole::Sampler, 3), 1.0);
        assert_eq!(p.transient_failures(17), 0);
        assert_eq!(p.device_fail_ns(2), None);
    }

    #[test]
    fn crash_lookup_finds_the_right_slot() {
        let p = FaultPlan::none()
            .with_crash(ExecutorRole::Trainer, 1, 5)
            .with_crash(ExecutorRole::Sampler, 0, 2)
            .with_max_respawns(2);
        assert_eq!(p.crash_for(ExecutorRole::Trainer, 1), Some((0, 5)));
        assert_eq!(p.crash_for(ExecutorRole::Sampler, 0), Some((1, 2)));
        assert_eq!(p.crash_for(ExecutorRole::Trainer, 0), None);
    }

    #[test]
    fn stragglers_clamp_to_at_least_one() {
        let p = FaultPlan::none().with_straggler(ExecutorRole::Trainer, 2, 0.5);
        assert_eq!(p.slowdown(ExecutorRole::Trainer, 2), 1.0);
        let p = FaultPlan::none().with_straggler(ExecutorRole::Trainer, 2, 3.0);
        assert_eq!(p.slowdown(ExecutorRole::Trainer, 2), 3.0);
    }

    #[test]
    fn transient_failures_are_deterministic_and_bounded() {
        let p = FaultPlan::none().with_transients(0.5, 3).with_seed(9);
        let q = FaultPlan::none().with_transients(0.5, 3).with_seed(9);
        let mut any_failure = false;
        for b in 0..200u64 {
            let f = p.transient_failures(b);
            assert_eq!(f, q.transient_failures(b), "batch {b} not deterministic");
            assert!(f <= 3);
            any_failure |= f > 0;
        }
        assert!(any_failure, "p=0.5 over 200 batches must fail sometimes");
        // A different seed gives a different fault sequence.
        let r = FaultPlan::none().with_transients(0.5, 3).with_seed(10);
        let same = (0..200u64).all(|b| p.transient_failures(b) == r.transient_failures(b));
        assert!(!same, "seeds 9 and 10 produced identical sequences");
    }

    #[test]
    fn zero_probability_never_fails() {
        let p = FaultPlan::none().with_transients(0.0, 5);
        assert!((0..100u64).all(|b| p.transient_failures(b) == 0));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = FaultPlan {
            retry: RetryPolicy {
                max_attempts: 10,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(4),
            },
            ..FaultPlan::none()
        };
        let b0 = p.backoff(0, 7);
        let b2 = p.backoff(2, 7);
        let b9 = p.backoff(9, 7);
        // Exponential below the cap (jitter < base keeps ordering).
        assert!(b0 < b2, "{b0:?} vs {b2:?}");
        // Capped: max_backoff + jitter < max + base.
        assert!(b9 <= Duration::from_millis(5), "{b9:?}");
        // Deterministic.
        assert_eq!(p.backoff(2, 7), b2);
    }

    #[test]
    fn device_fail_takes_the_earliest() {
        let p = FaultPlan::none()
            .with_device_failure(500, 3)
            .with_device_failure(200, 3)
            .with_device_failure(100, 1);
        assert_eq!(p.device_fail_ns(3), Some(200));
        assert_eq!(p.device_fail_ns(1), Some(100));
        assert_eq!(p.device_fail_ns(0), None);
    }

    #[test]
    fn convenience_constructors_grant_budget() {
        let p = FaultPlan::crash_trainer(0, 3);
        assert_eq!(p.max_respawns, 1);
        assert_eq!(p.crash_for(ExecutorRole::Trainer, 0), Some((0, 3)));
        let p = FaultPlan::crash_sampler(1, 2);
        assert_eq!(p.crash_for(ExecutorRole::Sampler, 1), Some((0, 2)));
    }
}
