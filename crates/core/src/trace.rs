//! Recorded sampling epochs: the measured quantities every simulation
//! consumes.

use crate::workload::Workload;
use gnnlab_graph::VertexId;
use gnnlab_sampling::{presample_rng, Kernel, MinibatchIter, Sample, SampleBuffers, SampleWork};
use gnnlab_tensor::flops::train_flops;

/// Measured quantities of one mini-batch's sampling.
#[derive(Debug, Clone)]
pub struct BatchTrace {
    /// Exact sampling work counters.
    pub work: SampleWork,
    /// Distinct input vertices whose features the batch needs.
    pub input_nodes: Vec<VertexId>,
    /// Estimated training FLOPs for this batch (at run scale).
    pub flops: f64,
    /// Serialized sample size for queue-cost accounting (at run scale).
    pub queue_bytes: u64,
}

/// One recorded epoch of sampling for a workload.
#[derive(Debug, Clone)]
pub struct EpochTrace {
    /// Per-batch records, in epoch order.
    pub batches: Vec<BatchTrace>,
    /// Scale factor to multiply measured quantities back to paper scale.
    pub factor: f64,
    /// Ratio of paper-scale batch count to this trace's batch count.
    /// Kernel launches (a per-batch quantity) are multiplied by this when
    /// the 32-seed batch floor shrank the batch count (see
    /// `Dataset::batch_size`).
    pub launch_scale: f64,
}

impl EpochTrace {
    /// Records one epoch of real sampling for `workload` with the given
    /// kernel. `epoch` selects the deterministic batch shuffle; pass the
    /// actual epoch index so traces line up with PreSC's pre-sampled
    /// epochs.
    pub fn record(workload: &Workload, kernel: Kernel, epoch: u64) -> EpochTrace {
        Self::record_with_batch(workload, kernel, epoch, workload.batch_size())
    }

    /// Records one epoch with an explicit mini-batch size (the §8
    /// mini-batch-size ablation).
    pub fn record_with_batch(
        workload: &Workload,
        kernel: Kernel,
        epoch: u64,
        batch_size: usize,
    ) -> EpochTrace {
        let algo = workload.sampler(kernel);
        let csr = &workload.dataset.csr;
        let mut batches = Vec::new();
        // One scratch set for the whole epoch: recording reuses sampling
        // buffers batch to batch just like the executed runtime, so a
        // trace costs no per-batch allocations (the draws are identical
        // either way — buffer reuse preserves the exact RNG sequence).
        let mut bufs = SampleBuffers::new();
        let mut s = Sample::default();
        for (bi, seeds) in MinibatchIter::new(
            &workload.dataset.train_set,
            batch_size.max(1),
            workload.seed,
            epoch,
        )
        .enumerate()
        {
            // Per-(seed, epoch, batch) stream — the same derivation PreSC's
            // parallel pre-sampling uses, so a recorded epoch and a
            // pre-sampled epoch see identical draws batch for batch.
            let mut rng = presample_rng(workload.seed, epoch, bi as u64);
            algo.sample_into(csr, &seeds, &mut rng, &mut bufs, &mut s);
            let flops = train_flops(
                workload.model,
                &s,
                workload.dataset.features.dim(),
                workload.hidden_dim,
                workload.num_classes,
            );
            batches.push(BatchTrace {
                work: s.work,
                queue_bytes: s.queue_bytes(),
                flops,
                input_nodes: s
                    .blocks
                    .first()
                    .map(|b| b.src_globals.clone())
                    .unwrap_or_default(),
            });
        }
        // Intended paper-scale batch count: the default path targets the
        // paper's 8000-seed batches (compensating the small-scale batch
        // floor); a custom batch size targets its own scaled-up size.
        let factor = workload.dataset.scale.factor();
        let intended = if batch_size == workload.batch_size() {
            workload.dataset.paper_batches() as u64
        } else {
            workload
                .dataset
                .spec
                .train_set
                .div_ceil((batch_size as u64).saturating_mul(factor).max(1))
        };
        let launch_scale = intended as f64 / batches.len().max(1) as f64;
        EpochTrace {
            batches,
            factor: factor as f64,
            launch_scale,
        }
    }

    /// Number of batches.
    pub fn num_batches(&self) -> usize {
        self.batches.len()
    }

    /// Total distinct-per-batch input vertices over the epoch.
    pub fn total_input_nodes(&self) -> u64 {
        self.batches
            .iter()
            .map(|b| b.input_nodes.len() as u64)
            .sum()
    }

    /// Total feature bytes needed per epoch at paper scale (no cache).
    pub fn total_feature_bytes_paper(&self, row_bytes: u64) -> f64 {
        self.total_input_nodes() as f64 * row_bytes as f64 * self.factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnlab_graph::{DatasetKind, Scale};
    use gnnlab_tensor::ModelKind;

    fn workload() -> Workload {
        Workload::new(
            ModelKind::GraphSage,
            DatasetKind::Products,
            Scale::new(4096),
            1,
        )
    }

    #[test]
    fn records_expected_batch_count() {
        let w = workload();
        let t = EpochTrace::record(&w, Kernel::FisherYates, 0);
        assert_eq!(t.num_batches(), w.dataset.batches_per_epoch());
        assert!(t.batches.iter().all(|b| !b.input_nodes.is_empty()));
        assert!(t.batches.iter().all(|b| b.flops > 0.0));
    }

    #[test]
    fn reservoir_trace_draws_more_rng() {
        let w = workload();
        let fy = EpochTrace::record(&w, Kernel::FisherYates, 0);
        let rs = EpochTrace::record(&w, Kernel::Reservoir, 0);
        let fy_draws: u64 = fy.batches.iter().map(|b| b.work.rng_draws).sum();
        let rs_draws: u64 = rs.batches.iter().map(|b| b.work.rng_draws).sum();
        assert!(
            rs_draws > fy_draws,
            "reservoir {rs_draws} <= fisher-yates {fy_draws}"
        );
    }

    #[test]
    fn traces_are_deterministic() {
        let w = workload();
        let a = EpochTrace::record(&w, Kernel::FisherYates, 2);
        let b = EpochTrace::record(&w, Kernel::FisherYates, 2);
        assert_eq!(a.total_input_nodes(), b.total_input_nodes());
        // Different epochs shuffle differently.
        let c = EpochTrace::record(&w, Kernel::FisherYates, 3);
        let a_first: Vec<_> = a.batches[0].input_nodes.clone();
        let c_first: Vec<_> = c.batches[0].input_nodes.clone();
        assert_ne!(a_first, c_first);
    }

    #[test]
    fn paper_scale_bytes_blow_up_by_factor() {
        let w = workload();
        let t = EpochTrace::record(&w, Kernel::FisherYates, 0);
        let measured = t.total_input_nodes() as f64 * 400.0;
        assert!((t.total_feature_bytes_paper(400) - measured * 4096.0).abs() < 1.0);
    }
}
