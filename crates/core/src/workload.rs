//! Workload definitions: (model, dataset, sampling algorithm) triples.

use gnnlab_graph::{Dataset, DatasetKind, Scale};
use gnnlab_sampling::{AlgorithmKind, KHop, Kernel, RandomWalk, SamplingAlgorithm, Selection};
use gnnlab_tensor::ModelKind;

/// One GNN training workload with the paper's hyper-parameters (§7.1):
/// mini-batch size 8000, hidden dim 256, model-specific fan-outs.
pub struct Workload {
    /// The GNN model.
    pub model: ModelKind,
    /// The instantiated dataset.
    pub dataset: Dataset,
    /// The sampling algorithm (defaults to the model's; §7.4 swaps in
    /// weighted sampling).
    pub algorithm: AlgorithmKind,
    /// Hidden dimension for FLOP estimation (paper: 256).
    pub hidden_dim: usize,
    /// Output classes for FLOP estimation.
    pub num_classes: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Workload {
    /// The sampling algorithm each model uses in the paper.
    pub fn default_algorithm(model: ModelKind) -> AlgorithmKind {
        match model {
            ModelKind::Gcn => AlgorithmKind::Khop3Random,
            ModelKind::GraphSage => AlgorithmKind::Khop2Random,
            ModelKind::PinSage => AlgorithmKind::RandomWalks,
        }
    }

    /// Builds the standard workload for `model` on `kind` at `scale`.
    ///
    /// Class counts follow the real datasets (47 for OGB-Products, 172
    /// for OGB-Papers) and 64 for the feature-less TW/UK graphs, matching
    /// the paper's random-label practice.
    pub fn new(model: ModelKind, kind: DatasetKind, scale: Scale, seed: u64) -> Self {
        let algorithm = Self::default_algorithm(model);
        let dataset = if algorithm.needs_weights() {
            gnnlab_par::invariant!(
                Dataset::generate_weighted(kind, scale, seed),
                "enum-typed dataset parameters always generate"
            )
        } else {
            gnnlab_par::invariant!(
                Dataset::generate(kind, scale, seed),
                "enum-typed dataset parameters always generate"
            )
        };
        let num_classes = match kind {
            DatasetKind::Products => 47,
            DatasetKind::Papers => 172,
            _ => 64,
        };
        Workload {
            model,
            dataset,
            algorithm,
            hidden_dim: 256,
            num_classes,
            seed,
        }
    }

    /// Builds a workload over a user-supplied [`Dataset`] (see
    /// [`Dataset::custom`]) with explicit hyper-parameters.
    pub fn with_dataset(model: ModelKind, dataset: Dataset, num_classes: usize, seed: u64) -> Self {
        Workload {
            model,
            algorithm: Self::default_algorithm(model),
            dataset,
            hidden_dim: 256,
            num_classes,
            seed,
        }
    }

    /// Replaces the sampling algorithm (regenerating the dataset with
    /// weights if needed) — used by the §7.4 weighted-sampling runs.
    pub fn with_algorithm(mut self, algorithm: AlgorithmKind) -> Self {
        if algorithm.needs_weights() && !self.dataset.csr.is_weighted() {
            self.dataset = gnnlab_par::invariant!(
                Dataset::generate_weighted(self.dataset.spec.kind, self.dataset.scale, self.seed,),
                "enum-typed dataset parameters always generate"
            );
        }
        self.algorithm = algorithm;
        self
    }

    /// Instantiates the sampler with the given uniform-selection kernel
    /// (Fisher–Yates for GNNLab/T_SOTA, Reservoir for DGL; §7.3).
    pub fn sampler(&self, kernel: Kernel) -> Box<dyn SamplingAlgorithm> {
        match self.algorithm {
            AlgorithmKind::Khop3Random => {
                Box::new(KHop::new(vec![15, 10, 5], kernel, Selection::Uniform))
            }
            AlgorithmKind::Khop2Random => {
                Box::new(KHop::new(vec![25, 10], kernel, Selection::Uniform))
            }
            AlgorithmKind::RandomWalks => Box::new(RandomWalk::pinsage()),
            AlgorithmKind::Khop3Weighted => {
                Box::new(KHop::new(vec![15, 10, 5], kernel, Selection::Weighted))
            }
        }
    }

    /// Mini-batch size at this workload's scale.
    pub fn batch_size(&self) -> usize {
        self.dataset.batch_size()
    }

    /// Short label, e.g. `GCN/PA`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}",
            self.model.abbrev(),
            self.dataset.spec.kind.abbrev()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_algorithm_mapping() {
        assert_eq!(
            Workload::default_algorithm(ModelKind::Gcn),
            AlgorithmKind::Khop3Random
        );
        assert_eq!(
            Workload::default_algorithm(ModelKind::GraphSage),
            AlgorithmKind::Khop2Random
        );
        assert_eq!(
            Workload::default_algorithm(ModelKind::PinSage),
            AlgorithmKind::RandomWalks
        );
    }

    #[test]
    fn builds_with_paper_hyperparameters() {
        let w = Workload::new(ModelKind::Gcn, DatasetKind::Products, Scale::TEST, 1);
        assert_eq!(w.hidden_dim, 256);
        assert_eq!(w.num_classes, 47);
        assert_eq!(w.label(), "GCN/PR");
        assert!(!w.dataset.csr.is_weighted());
    }

    #[test]
    fn weighted_algorithm_regenerates_weights() {
        let w = Workload::new(ModelKind::Gcn, DatasetKind::Twitter, Scale::TEST, 1)
            .with_algorithm(AlgorithmKind::Khop3Weighted);
        assert!(w.dataset.csr.is_weighted());
        assert_eq!(w.algorithm, AlgorithmKind::Khop3Weighted);
    }

    #[test]
    fn sampler_respects_kernel_choice() {
        let w = Workload::new(ModelKind::Gcn, DatasetKind::Products, Scale::TEST, 1);
        // Smoke: both kernels produce valid samplers.
        let fy = w.sampler(Kernel::FisherYates);
        let rs = w.sampler(Kernel::Reservoir);
        assert_eq!(fy.num_layers(), 3);
        assert_eq!(rs.num_layers(), 3);
    }
}
