//! Immutable compressed-sparse-row graph representation.

use crate::{GraphError, Result};

/// Vertex identifier.
///
/// The paper's largest dataset (OGB-Papers, 111 M vertices) fits in `u32`,
/// and all GNNLab kernels index with 32-bit ids for GPU friendliness; we
/// mirror that.
pub type VertexId = u32;

/// An immutable directed graph in compressed-sparse-row layout.
///
/// Stores out-neighbors per vertex. Optionally carries per-edge weights and
/// — when weights are present — per-vertex cumulative weight tables used by
/// weighted neighborhood sampling (binary search over the CDF, the same
/// access pattern a GPU kernel would use).
///
/// # Examples
///
/// ```
/// use gnnlab_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1);
/// b.add_edge(0, 2);
/// b.add_edge(2, 3);
/// let g = b.build().unwrap();
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.neighbors(0), &[1, 2]);
/// assert_eq!(g.out_degree(2), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Csr {
    indptr: Vec<u64>,
    indices: Vec<VertexId>,
    weights: Option<Vec<f32>>,
    /// Per-edge cumulative weights within each vertex's neighbor range.
    /// Built eagerly when weights are attached; `cum_weights[indptr[v]..indptr[v+1]]`
    /// is a non-decreasing prefix-sum array ending at the vertex's total weight.
    cum_weights: Option<Vec<f32>>,
}

impl Csr {
    /// Builds a CSR graph directly from index arrays.
    ///
    /// `indptr` must have length `n + 1`, start at 0, be non-decreasing and
    /// end at `indices.len()`. Every entry of `indices` must be `< n`.
    pub fn from_parts(indptr: Vec<u64>, indices: Vec<VertexId>) -> Result<Self> {
        if indptr.is_empty() {
            return Err(GraphError::MalformedCsr("indptr must be non-empty"));
        }
        if indptr[0] != 0 {
            return Err(GraphError::MalformedCsr("indptr[0] must be 0"));
        }
        if *indptr.last().expect("non-empty") != indices.len() as u64 {
            return Err(GraphError::MalformedCsr("indptr must end at indices.len()"));
        }
        if indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::MalformedCsr("indptr must be non-decreasing"));
        }
        let n = (indptr.len() - 1) as u64;
        if let Some(&v) = indices.iter().find(|&&v| u64::from(v) >= n) {
            return Err(GraphError::VertexOutOfRange {
                vertex: u64::from(v),
                num_vertices: n,
            });
        }
        Ok(Csr {
            indptr,
            indices,
            weights: None,
            cum_weights: None,
        })
    }

    /// Attaches per-edge weights (same order as the internal edge array) and
    /// builds the per-vertex cumulative weight tables.
    ///
    /// Weights must be finite and non-negative; a vertex whose neighbor
    /// weights are all zero falls back to uniform selection at sampling time.
    pub fn with_weights(mut self, weights: Vec<f32>) -> Result<Self> {
        if weights.len() != self.indices.len() {
            return Err(GraphError::WeightLengthMismatch {
                edges: self.indices.len(),
                weights: weights.len(),
            });
        }
        if let Some(idx) = weights.iter().position(|w| !w.is_finite() || *w < 0.0) {
            return Err(GraphError::InvalidWeight { index: idx });
        }
        let mut cum = vec![0.0f32; weights.len()];
        for v in 0..self.num_vertices() {
            let (s, e) = self.range(v as VertexId);
            let mut acc = 0.0f32;
            for i in s..e {
                acc += weights[i];
                cum[i] = acc;
            }
        }
        self.weights = Some(weights);
        self.cum_weights = Some(cum);
        Ok(self)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Number of (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.indices.len()
    }

    /// Whether edge weights are attached.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    #[inline]
    fn range(&self, v: VertexId) -> (usize, usize) {
        let v = v as usize;
        (self.indptr[v] as usize, self.indptr[v + 1] as usize)
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices()`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        let (s, e) = self.range(v);
        e - s
    }

    /// Out-neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices()`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let (s, e) = self.range(v);
        &self.indices[s..e]
    }

    /// Per-edge weights of `v`'s out-edges, if weights are attached.
    #[inline]
    pub fn edge_weights(&self, v: VertexId) -> Option<&[f32]> {
        let (s, e) = self.range(v);
        self.weights.as_ref().map(|w| &w[s..e])
    }

    /// Cumulative (prefix-sum) weights of `v`'s out-edges, if attached.
    ///
    /// The last entry is the vertex's total out-weight. Used by weighted
    /// sampling to draw a neighbor in `O(log degree)`.
    #[inline]
    pub fn cumulative_weights(&self, v: VertexId) -> Option<&[f32]> {
        let (s, e) = self.range(v);
        self.cum_weights.as_ref().map(|w| &w[s..e])
    }

    /// All out-degrees as a vector (used by the degree-based cache policy).
    pub fn out_degrees(&self) -> Vec<u32> {
        (0..self.num_vertices())
            .map(|v| self.out_degree(v as VertexId) as u32)
            .collect()
    }

    /// Size in bytes of the topology data (`indptr` + `indices` + weights
    /// and cumulative tables if present), as it would occupy GPU memory.
    pub fn topology_bytes(&self) -> u64 {
        let mut bytes = (self.indptr.len() * std::mem::size_of::<u64>()) as u64
            + (self.indices.len() * std::mem::size_of::<VertexId>()) as u64;
        if self.weights.is_some() {
            // Weights + cumulative table.
            bytes += 2 * (self.indices.len() * std::mem::size_of::<f32>()) as u64;
        }
        bytes
    }

    /// Maximum out-degree over all vertices (0 for an empty graph).
    pub fn max_out_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.out_degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Returns `(mean, p99, max)` of the out-degree distribution; a quick
    /// skewness proxy used by tests and the dataset registry.
    pub fn degree_summary(&self) -> (f64, usize, usize) {
        let n = self.num_vertices();
        if n == 0 {
            return (0.0, 0, 0);
        }
        let mut degs: Vec<usize> = (0..n).map(|v| self.out_degree(v as VertexId)).collect();
        degs.sort_unstable();
        let mean = self.num_edges() as f64 / n as f64;
        let p99 = degs[((n - 1) as f64 * 0.99) as usize];
        let max = *degs.last().expect("n > 0");
        (mean, p99, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Csr {
        // 0 -> {1, 2}, 1 -> {2}, 2 -> {}, 3 -> {0}
        Csr::from_parts(vec![0, 2, 3, 3, 4], vec![1, 2, 2, 0]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = tiny();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[] as &[VertexId]);
        assert_eq!(g.out_degree(3), 1);
        assert_eq!(g.max_out_degree(), 2);
        assert!(!g.is_weighted());
    }

    #[test]
    fn rejects_bad_indptr() {
        assert!(matches!(
            Csr::from_parts(vec![], vec![]),
            Err(GraphError::MalformedCsr(_))
        ));
        assert!(matches!(
            Csr::from_parts(vec![1, 2], vec![0, 0]),
            Err(GraphError::MalformedCsr(_))
        ));
        assert!(matches!(
            Csr::from_parts(vec![0, 3], vec![0]),
            Err(GraphError::MalformedCsr(_))
        ));
        assert!(matches!(
            Csr::from_parts(vec![0, 2, 1], vec![0, 0]),
            Err(GraphError::MalformedCsr(_))
        ));
    }

    #[test]
    fn rejects_out_of_range_vertex() {
        let err = Csr::from_parts(vec![0, 1], vec![5]).unwrap_err();
        assert_eq!(
            err,
            GraphError::VertexOutOfRange {
                vertex: 5,
                num_vertices: 1
            }
        );
    }

    #[test]
    fn weights_roundtrip_and_cumsum() {
        let g = tiny().with_weights(vec![1.0, 3.0, 2.0, 5.0]).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weights(0).unwrap(), &[1.0, 3.0]);
        assert_eq!(g.cumulative_weights(0).unwrap(), &[1.0, 4.0]);
        assert_eq!(g.cumulative_weights(1).unwrap(), &[2.0]);
        assert_eq!(g.cumulative_weights(2).unwrap(), &[] as &[f32]);
        assert_eq!(g.cumulative_weights(3).unwrap(), &[5.0]);
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(matches!(
            tiny().with_weights(vec![1.0]),
            Err(GraphError::WeightLengthMismatch { .. })
        ));
        assert!(matches!(
            tiny().with_weights(vec![1.0, -2.0, 0.0, 0.0]),
            Err(GraphError::InvalidWeight { index: 1 })
        ));
        assert!(matches!(
            tiny().with_weights(vec![1.0, f32::NAN, 0.0, 0.0]),
            Err(GraphError::InvalidWeight { index: 1 })
        ));
    }

    #[test]
    fn topology_bytes_counts_weight_tables() {
        let g = tiny();
        let unweighted = g.topology_bytes();
        let weighted = g
            .clone()
            .with_weights(vec![1.0; 4])
            .unwrap()
            .topology_bytes();
        assert_eq!(weighted, unweighted + 2 * 4 * 4);
    }

    #[test]
    fn degree_summary_sane() {
        let g = tiny();
        let (mean, p99, max) = g.degree_summary();
        assert!((mean - 1.0).abs() < 1e-9);
        assert_eq!(max, 2);
        assert!(p99 <= max);
    }
}
