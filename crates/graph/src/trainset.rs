//! Deterministic training-set selection.

use crate::csr::VertexId;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Selects a random training set of `size` vertices out of `num_vertices`.
///
/// Mirrors the paper's practice for Twitter and UK-2006 ("randomly selects a
/// small portion of vertices as the training set", selected offline once and
/// shared across runs): the result is a sorted, duplicate-free vertex list,
/// deterministic in `seed`.
pub fn random_train_set(num_vertices: usize, size: usize, seed: u64) -> Vec<VertexId> {
    let size = size.min(num_vertices);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut all: Vec<VertexId> = (0..num_vertices as VertexId).collect();
    all.partial_shuffle(&mut rng, size);
    let mut ts: Vec<VertexId> = all[..size].to_vec();
    ts.sort_unstable();
    ts
}

/// Selects the most recent `size` vertices (highest ids) as the training
/// set — OGB-Papers' official split trains on the newest papers. Used for
/// the Papers stand-in.
pub fn recent_train_set(num_vertices: usize, size: usize) -> Vec<VertexId> {
    let size = size.min(num_vertices);
    ((num_vertices - size) as VertexId..num_vertices as VertexId).collect()
}

/// Selects the top-`size` vertices by id (lowest ids). The Chung–Lu
/// generator orders vertices by expected degree, so this picks the hubs —
/// matching OGB-Products' official split, which trains on the
/// top-sales-rank products. Used for the Products stand-in.
pub fn top_train_set(num_vertices: usize, size: usize) -> Vec<VertexId> {
    (0..size.min(num_vertices) as VertexId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_sorted_unique() {
        let a = random_train_set(1000, 100, 7);
        let b = random_train_set(1000, 100, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a.iter().all(|&v| v < 1000));
    }

    #[test]
    fn random_differs_by_seed() {
        assert_ne!(
            random_train_set(1000, 100, 1),
            random_train_set(1000, 100, 2)
        );
    }

    #[test]
    fn size_clamped_to_population() {
        assert_eq!(random_train_set(10, 100, 1).len(), 10);
        assert_eq!(recent_train_set(10, 100).len(), 10);
    }

    #[test]
    fn recent_takes_highest_ids() {
        assert_eq!(recent_train_set(10, 3), vec![7, 8, 9]);
    }
}
