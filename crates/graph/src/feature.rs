//! Vertex feature storage.

use crate::csr::VertexId;

/// Per-vertex feature storage.
///
/// Performance experiments only need *byte accounting* — which vertices'
/// features crossed PCIe — so [`FeatureStore::Virtual`] stores nothing but
/// the shape. Actual model training (the convergence experiment, the
/// quickstart example) uses [`FeatureStore::Materialized`] with real rows.
#[derive(Debug, Clone)]
pub enum FeatureStore {
    /// Shape-only features; `row()` is unavailable.
    Virtual {
        /// Number of vertices.
        num_vertices: usize,
        /// Feature dimension.
        dim: usize,
    },
    /// Real `f32` features, row-major.
    Materialized {
        /// Number of vertices.
        num_vertices: usize,
        /// Feature dimension.
        dim: usize,
        /// Row-major `num_vertices x dim` data.
        data: Vec<f32>,
    },
}

impl FeatureStore {
    /// Creates a virtual (shape-only) store.
    pub fn virtual_store(num_vertices: usize, dim: usize) -> Self {
        FeatureStore::Virtual { num_vertices, dim }
    }

    /// Creates a materialized store from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != num_vertices * dim`.
    pub fn materialized(num_vertices: usize, dim: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            num_vertices * dim,
            "feature data shape mismatch"
        );
        FeatureStore::Materialized {
            num_vertices,
            dim,
            data,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        match self {
            FeatureStore::Virtual { num_vertices, .. }
            | FeatureStore::Materialized { num_vertices, .. } => *num_vertices,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        match self {
            FeatureStore::Virtual { dim, .. } | FeatureStore::Materialized { dim, .. } => *dim,
        }
    }

    /// Bytes per feature row (f32 elements).
    pub fn row_bytes(&self) -> u64 {
        (self.dim() * std::mem::size_of::<f32>()) as u64
    }

    /// Total feature bytes for all vertices.
    pub fn total_bytes(&self) -> u64 {
        self.num_vertices() as u64 * self.row_bytes()
    }

    /// The feature row of `v`, if materialized.
    pub fn row(&self, v: VertexId) -> Option<&[f32]> {
        match self {
            FeatureStore::Virtual { .. } => None,
            FeatureStore::Materialized { dim, data, .. } => {
                let s = v as usize * dim;
                data.get(s..s + dim)
            }
        }
    }

    /// Gathers rows for `ids` into a dense row-major buffer, if
    /// materialized. This is the host-side Extract gather.
    pub fn gather(&self, ids: &[VertexId]) -> Option<Vec<f32>> {
        match self {
            FeatureStore::Virtual { .. } => None,
            FeatureStore::Materialized { dim, data, .. } => {
                let mut out = Vec::with_capacity(ids.len() * dim);
                for &v in ids {
                    let s = v as usize * dim;
                    out.extend_from_slice(&data[s..s + dim]);
                }
                Some(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_accounting() {
        let f = FeatureStore::virtual_store(10, 128);
        assert_eq!(f.num_vertices(), 10);
        assert_eq!(f.dim(), 128);
        assert_eq!(f.row_bytes(), 512);
        assert_eq!(f.total_bytes(), 5120);
        assert!(f.row(0).is_none());
        assert!(f.gather(&[0, 1]).is_none());
    }

    #[test]
    fn materialized_rows_and_gather() {
        let data = (0..6).map(|x| x as f32).collect();
        let f = FeatureStore::materialized(3, 2, data);
        assert_eq!(f.row(1).unwrap(), &[2.0, 3.0]);
        assert_eq!(f.gather(&[2, 0]).unwrap(), vec![4.0, 5.0, 0.0, 1.0]);
        assert!(f.row(3).is_none());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn materialized_shape_checked() {
        let _ = FeatureStore::materialized(3, 2, vec![0.0; 5]);
    }
}
