//! Graph serialization: text edge lists and a compact binary CSR format.
//!
//! Lets downstream users bring their own graphs instead of the synthetic
//! generators: load an edge list (the format OGB/SNAP dumps use), or
//! round-trip the compact binary format for fast reloads.

use crate::csr::{Csr, VertexId};
use crate::{GraphBuilder, GraphError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from graph I/O (wraps [`GraphError`] for format problems).
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file content was not a valid graph.
    Format(String),
    /// The parsed structure failed validation.
    Graph(GraphError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
            IoError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

/// Reads a whitespace-separated edge list (`src dst [weight]` per line;
/// `#`-prefixed lines are comments). `num_vertices` of `None` infers
/// `max id + 1`.
pub fn read_edge_list(
    path: &Path,
    num_vertices: Option<usize>,
) -> std::result::Result<Csr, IoError> {
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);
    let mut edges: Vec<(VertexId, VertexId, Option<f32>)> = Vec::new();
    let mut max_id: u64 = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> std::result::Result<u64, IoError> {
            tok.ok_or_else(|| IoError::Format(format!("line {}: missing {what}", lineno + 1)))?
                .parse::<u64>()
                .map_err(|_| IoError::Format(format!("line {}: bad {what}", lineno + 1)))
        };
        let s = parse(parts.next(), "src")?;
        let d = parse(parts.next(), "dst")?;
        let w = match parts.next() {
            Some(tok) => Some(
                tok.parse::<f32>()
                    .map_err(|_| IoError::Format(format!("line {}: bad weight", lineno + 1)))?,
            ),
            None => None,
        };
        max_id = max_id.max(s).max(d);
        if s > u64::from(VertexId::MAX) || d > u64::from(VertexId::MAX) {
            return Err(IoError::Format(format!(
                "line {}: vertex id exceeds u32",
                lineno + 1
            )));
        }
        edges.push((s as VertexId, d as VertexId, w));
    }
    let n = num_vertices.unwrap_or((max_id + 1) as usize);
    let any_weight = edges.iter().any(|(_, _, w)| w.is_some());
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (s, d, w) in edges {
        match (any_weight, w) {
            (true, w) => b.add_weighted_edge(s, d, w.unwrap_or(1.0)),
            (false, _) => b.add_edge(s, d),
        }
    }
    Ok(b.build()?)
}

/// Writes a graph as a text edge list (with weights if present).
pub fn write_edge_list(csr: &Csr, path: &Path) -> std::result::Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(
        w,
        "# gnnlab edge list: {} vertices, {} edges",
        csr.num_vertices(),
        csr.num_edges()
    )?;
    for v in 0..csr.num_vertices() as VertexId {
        let nbrs = csr.neighbors(v);
        match csr.edge_weights(v) {
            Some(ws) => {
                for (d, wt) in nbrs.iter().zip(ws) {
                    writeln!(w, "{v} {d} {wt}")?;
                }
            }
            None => {
                for d in nbrs {
                    writeln!(w, "{v} {d}")?;
                }
            }
        }
    }
    Ok(())
}

const MAGIC: &[u8; 8] = b"GNNLCSR1";

/// Writes the compact binary CSR format (little-endian):
/// magic, n, m, weighted flag, indptr (u64), indices (u32), weights (f32).
pub fn write_binary(csr: &Csr, path: &Path) -> std::result::Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC)?;
    let n = csr.num_vertices() as u64;
    let m = csr.num_edges() as u64;
    w.write_all(&n.to_le_bytes())?;
    w.write_all(&m.to_le_bytes())?;
    w.write_all(&[u8::from(csr.is_weighted())])?;
    let mut off: u64 = 0;
    w.write_all(&off.to_le_bytes())?;
    for v in 0..csr.num_vertices() as VertexId {
        off += csr.out_degree(v) as u64;
        w.write_all(&off.to_le_bytes())?;
    }
    for v in 0..csr.num_vertices() as VertexId {
        for d in csr.neighbors(v) {
            w.write_all(&d.to_le_bytes())?;
        }
    }
    if csr.is_weighted() {
        for v in 0..csr.num_vertices() as VertexId {
            let ws = csr.edge_weights(v).ok_or_else(|| {
                IoError::Format(format!(
                    "graph reports weighted but vertex {v} has no weight array"
                ))
            })?;
            for wt in ws {
                w.write_all(&wt.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

/// Bytes a well-formed binary CSR file must occupy: magic + header +
/// indptr (u64 × n+1) + indices (u32 × m) + optional weights (f32 × m).
fn binary_file_size(n: u64, m: u64, weighted: bool) -> Option<u64> {
    let header = 8u64 + 8 + 8 + 1;
    let indptr = n.checked_add(1)?.checked_mul(8)?;
    let indices = m.checked_mul(4)?;
    let weights = if weighted { indices } else { 0 };
    header
        .checked_add(indptr)?
        .checked_add(indices)?
        .checked_add(weights)
}

/// Reads exactly `buf.len()` bytes of `section`. An early EOF becomes a
/// section-named [`IoError::Format`] ("truncated <section> section") so
/// callers learn *where* a torn file ends, not just that a read failed;
/// every other I/O failure stays an [`IoError::Io`].
fn read_section(
    r: &mut impl Read,
    buf: &mut [u8],
    section: &str,
) -> std::result::Result<(), IoError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            IoError::Format(format!("truncated {section} section"))
        } else {
            IoError::Io(e)
        }
    })
}

fn read_exact_u64(r: &mut impl Read, section: &str) -> std::result::Result<u64, IoError> {
    let mut buf = [0u8; 8];
    read_section(r, &mut buf, section)?;
    Ok(u64::from_le_bytes(buf))
}

/// Reads the compact binary CSR format written by [`write_binary`].
///
/// The header is validated against the actual file size before any
/// allocation, so a truncated or corrupted file yields a typed
/// [`IoError::Format`] instead of a partial read or an absurd
/// `Vec::with_capacity` from a garbage edge count.
pub fn read_binary(path: &Path) -> std::result::Result<Csr, IoError> {
    let file = std::fs::File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 8];
    read_section(&mut r, &mut magic, "magic")?;
    if &magic != MAGIC {
        return Err(IoError::Format(
            "bad magic; not a gnnlab binary CSR".to_string(),
        ));
    }
    let n64 = read_exact_u64(&mut r, "header")?;
    let m64 = read_exact_u64(&mut r, "header")?;
    let mut flag = [0u8; 1];
    read_section(&mut r, &mut flag, "header")?;
    if flag[0] > 1 {
        return Err(IoError::Format(format!(
            "bad weighted flag {} (want 0 or 1)",
            flag[0]
        )));
    }
    let weighted = flag[0] != 0;
    let expected = binary_file_size(n64, m64, weighted).ok_or_else(|| {
        IoError::Format(format!(
            "header claims {n64} vertices / {m64} edges, which overflows any real file"
        ))
    })?;
    if file_len != expected {
        return Err(IoError::Format(format!(
            "file is {file_len} bytes but header ({n64} vertices, {m64} edges, \
             weighted={weighted}) requires exactly {expected}; truncated or corrupt"
        )));
    }
    let n = n64 as usize;
    let m = m64 as usize;
    let mut indptr = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        indptr.push(read_exact_u64(&mut r, "indptr")?);
    }
    let mut indices = Vec::with_capacity(m);
    let mut buf4 = [0u8; 4];
    for _ in 0..m {
        read_section(&mut r, &mut buf4, "indices")?;
        indices.push(u32::from_le_bytes(buf4));
    }
    let csr = Csr::from_parts(indptr, indices)?;
    if weighted {
        let mut weights = Vec::with_capacity(m);
        for _ in 0..m {
            read_section(&mut r, &mut buf4, "weights")?;
            weights.push(f32::from_le_bytes(buf4));
        }
        Ok(csr.with_weights(weights)?)
    } else {
        Ok(csr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::chung_lu;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gnnlab_io_test_{}_{name}", std::process::id()));
        p
    }

    fn graphs_equal(a: &Csr, b: &Csr) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        for v in 0..a.num_vertices() as VertexId {
            assert_eq!(a.neighbors(v), b.neighbors(v), "v={v}");
            assert_eq!(a.edge_weights(v).is_some(), b.edge_weights(v).is_some());
            if let (Some(wa), Some(wb)) = (a.edge_weights(v), b.edge_weights(v)) {
                assert_eq!(wa, wb);
            }
        }
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = chung_lu(200, 2000, 2.0, 1).unwrap();
        let path = tmp("edges.txt");
        write_edge_list(&g, &path).unwrap();
        let g2 = read_edge_list(&path, Some(200)).unwrap();
        graphs_equal(&g, &g2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn weighted_edge_list_roundtrip() {
        let g = crate::gen::recency_weights(chung_lu(100, 800, 2.0, 2).unwrap(), 3).unwrap();
        let path = tmp("wedges.txt");
        write_edge_list(&g, &path).unwrap();
        let g2 = read_edge_list(&path, Some(100)).unwrap();
        assert!(g2.is_weighted());
        assert_eq!(g.num_edges(), g2.num_edges());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_roundtrip() {
        let g = chung_lu(300, 3000, 2.0, 4).unwrap();
        let path = tmp("graph.bin");
        write_binary(&g, &path).unwrap();
        let g2 = read_binary(&path).unwrap();
        graphs_equal(&g, &g2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_weighted_roundtrip() {
        let g = crate::gen::recency_weights(chung_lu(150, 1000, 2.0, 5).unwrap(), 7).unwrap();
        let path = tmp("wgraph.bin");
        write_binary(&g, &path).unwrap();
        let g2 = read_binary(&path).unwrap();
        graphs_equal(&g, &g2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage.bin");
        std::fs::write(&path, b"not a graph at all").unwrap();
        assert!(matches!(read_binary(&path), Err(IoError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_list_parses_comments_and_infers_n() {
        let path = tmp("comments.txt");
        std::fs::write(&path, "# header\n0 1\n\n2 0\n").unwrap();
        let g = read_edge_list(&path, None).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_list_rejects_bad_lines() {
        let path = tmp("bad.txt");
        std::fs::write(&path, "0 x\n").unwrap();
        assert!(matches!(
            read_edge_list(&path, None),
            Err(IoError::Format(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_list_rejects_partial_lines() {
        // A write interrupted mid-line leaves a trailing src with no dst.
        let path = tmp("partial.txt");
        std::fs::write(&path, "0 1\n1 2\n2\n").unwrap();
        let err = read_edge_list(&path, None).unwrap_err();
        match err {
            IoError::Format(m) => assert!(m.contains("line 3"), "{m}"),
            other => panic!("expected Format, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_list_rejects_partial_weighted_lines() {
        let path = tmp("partial_w.txt");
        std::fs::write(&path, "0 1 0.5\n1 2 oops\n").unwrap();
        let err = read_edge_list(&path, None).unwrap_err();
        match err {
            IoError::Format(m) => assert!(m.contains("bad weight"), "{m}"),
            other => panic!("expected Format, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_binary_is_a_format_error() {
        let g = chung_lu(120, 900, 2.0, 9).unwrap();
        let path = tmp("trunc.bin");
        write_binary(&g, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Cut at several depths: inside indptr, inside indices, one byte
        // short of complete. Every cut must surface as a typed error, not
        // a panic or a silently partial graph.
        for cut in [30, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = read_binary(&path).unwrap_err();
            match err {
                IoError::Format(m) => {
                    assert!(m.contains("truncated"), "cut={cut}: {m}")
                }
                other => panic!("cut={cut}: expected Format, got {other:?}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_header_names_the_section() {
        // Not even a full magic: the early EOF surfaces as a typed format
        // error naming the section the file tore in, not a bare Io error.
        let path = tmp("trunc_hdr.bin");
        std::fs::write(&path, &MAGIC[..6]).unwrap();
        match read_binary(&path).unwrap_err() {
            IoError::Format(m) => assert!(m.contains("truncated magic"), "{m}"),
            other => panic!("expected Format, got {other:?}"),
        }
        // Magic intact but the counts cut short: the header section.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&7u64.to_le_bytes()[..4]);
        std::fs::write(&path, &bytes).unwrap();
        match read_binary(&path).unwrap_err() {
            IoError::Format(m) => assert!(m.contains("truncated header"), "{m}"),
            other => panic!("expected Format, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_binary_is_a_format_error() {
        let g = chung_lu(50, 200, 2.0, 3).unwrap();
        let path = tmp("padded.bin");
        write_binary(&g, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 16]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_binary(&path), Err(IoError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn absurd_edge_count_is_rejected_without_allocating() {
        // Header claims ~u64::MAX edges; the size check must reject it
        // before any Vec::with_capacity sees the number.
        let path = tmp("absurd.bin");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&[0u8; 40]); // fake indptr
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_binary(&path), Err(IoError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_weighted_flag_is_rejected() {
        let path = tmp("badflag.bin");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.push(7);
        bytes.extend_from_slice(&[0u8; 16]);
        std::fs::write(&path, &bytes).unwrap();
        let err = read_binary(&path).unwrap_err();
        match err {
            IoError::Format(m) => assert!(m.contains("flag"), "{m}"),
            other => panic!("expected Format, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
