//! Registry of the paper's datasets (Table 3) with scaled instantiation.

use crate::csr::{Csr, VertexId};
use crate::feature::FeatureStore;
use crate::gen;
use crate::scale::Scale;
use crate::trainset;
use crate::Result;

/// The four datasets of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// OGB-Products (PR): co-purchase network, moderate skew, small.
    Products,
    /// Twitter (TW): social graph, highly skewed power-law.
    Twitter,
    /// OGB-Papers (PA): citation network, low out-degree skew, tiny
    /// training-set fraction.
    Papers,
    /// UK-2006 (UK): web graph, skewed, the largest dataset.
    Uk,
    /// A user-supplied dataset (see [`Dataset::custom`]); not part of the
    /// paper's Table 3 and excluded from [`DatasetKind::ALL`].
    Custom,
}

impl DatasetKind {
    /// All four datasets in the paper's table order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Products,
        DatasetKind::Twitter,
        DatasetKind::Papers,
        DatasetKind::Uk,
    ];

    /// The paper's two-letter abbreviation.
    pub fn abbrev(&self) -> &'static str {
        match self {
            DatasetKind::Products => "PR",
            DatasetKind::Twitter => "TW",
            DatasetKind::Papers => "PA",
            DatasetKind::Uk => "UK",
            DatasetKind::Custom => "CU",
        }
    }

    /// The paper-scale specification of this dataset.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            DatasetKind::Products => DatasetSpec {
                kind: *self,
                name: "OGB-Products",
                vertices: 2_400_000,
                edges: 124_000_000,
                feat_dim: 100,
                train_set: 197_000,
            },
            DatasetKind::Twitter => DatasetSpec {
                kind: *self,
                name: "Twitter",
                vertices: 41_700_000,
                edges: 1_500_000_000,
                feat_dim: 256,
                train_set: 417_000,
            },
            DatasetKind::Papers => DatasetSpec {
                kind: *self,
                name: "OGB-Papers",
                vertices: 111_000_000,
                edges: 1_600_000_000,
                feat_dim: 128,
                train_set: 1_200_000,
            },
            DatasetKind::Uk => DatasetSpec {
                kind: *self,
                name: "UK-2006",
                vertices: 77_700_000,
                edges: 3_000_000_000,
                feat_dim: 256,
                train_set: 1_000_000,
            },
            // Placeholder; `Dataset::custom` fills the spec from the
            // actual data instead.
            DatasetKind::Custom => DatasetSpec {
                kind: *self,
                name: "custom",
                vertices: 0,
                edges: 0,
                feat_dim: 0,
                train_set: 0,
            },
        }
    }
}

/// Paper-scale dataset statistics (Table 3).
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Which dataset this is.
    pub kind: DatasetKind,
    /// Human-readable name.
    pub name: &'static str,
    /// Paper-scale vertex count.
    pub vertices: u64,
    /// Paper-scale edge count.
    pub edges: u64,
    /// Feature dimension (not scaled).
    pub feat_dim: usize,
    /// Paper-scale training-set size.
    pub train_set: u64,
}

impl DatasetSpec {
    /// Training-set fraction of all vertices.
    pub fn train_fraction(&self) -> f64 {
        self.train_set as f64 / self.vertices as f64
    }

    /// Paper-scale feature volume in bytes (`vertices * dim * 4`).
    pub fn paper_feature_bytes(&self) -> u64 {
        self.vertices * self.feat_dim as u64 * 4
    }
}

/// A dataset instantiated at some [`Scale`].
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Paper-scale specification.
    pub spec: DatasetSpec,
    /// The scale it was instantiated at.
    pub scale: Scale,
    /// Scaled topology.
    pub csr: Csr,
    /// Scaled features (virtual by default).
    pub features: FeatureStore,
    /// Scaled training set.
    pub train_set: Vec<VertexId>,
}

impl Dataset {
    /// Instantiates `kind` at `scale` with deterministic content.
    ///
    /// Topology generators per kind are chosen to reproduce the degree
    /// distribution *shape* the paper's results depend on (see
    /// [`crate::gen`]). Features are virtual (byte accounting only).
    pub fn generate(kind: DatasetKind, scale: Scale, seed: u64) -> Result<Dataset> {
        let spec = kind.spec();
        let n = scale.count(spec.vertices, 64);
        let m = scale.count(spec.edges, 256);
        let ts_size = scale.count(spec.train_set, 8);
        let csr = match kind {
            DatasetKind::Products => gen::chung_lu(n, m, 1.95, seed)?,
            DatasetKind::Twitter => gen::chung_lu(n, m, 1.75, seed ^ 0x5454)?,
            DatasetKind::Papers => gen::citation(n, m, seed ^ 0x5041)?,
            DatasetKind::Uk => gen::chung_lu(n, m, 1.85, seed ^ 0x554b)?,
            DatasetKind::Custom => {
                return Err(crate::GraphError::InvalidParameter(
                    "custom datasets are built with Dataset::custom, not generate",
                ))
            }
        };
        let train_set = match kind {
            // OGB official splits: Papers trains on the newest papers,
            // Products on the top-sales-rank products (the hubs); TW/UK
            // use a random fraction, as in the paper.
            DatasetKind::Papers => trainset::recent_train_set(n, ts_size),
            DatasetKind::Products => trainset::top_train_set(n, ts_size),
            _ => trainset::random_train_set(n, ts_size, seed ^ 0x7453),
        };
        let features = FeatureStore::virtual_store(n, spec.feat_dim);
        Ok(Dataset {
            spec,
            scale,
            csr,
            features,
            train_set,
        })
    }

    /// Wraps a user-supplied graph as a full-scale dataset, so the whole
    /// system (sampling, caching, simulation, training) runs on real data
    /// instead of the synthetic stand-ins. See `examples/custom_graph.rs`.
    pub fn custom(csr: Csr, features: FeatureStore, train_set: Vec<VertexId>) -> Dataset {
        assert_eq!(
            csr.num_vertices(),
            features.num_vertices(),
            "feature rows must match vertex count"
        );
        assert!(
            train_set.iter().all(|&v| (v as usize) < csr.num_vertices()),
            "training vertices out of range"
        );
        let spec = DatasetSpec {
            kind: DatasetKind::Custom,
            name: "custom",
            vertices: csr.num_vertices() as u64,
            edges: csr.num_edges() as u64,
            feat_dim: features.dim(),
            train_set: train_set.len() as u64,
        };
        Dataset {
            spec,
            scale: Scale::FULL,
            csr,
            features,
            train_set,
        }
    }

    /// Instantiates with recency edge weights attached (for weighted
    /// sampling experiments, §3 / §7.4).
    pub fn generate_weighted(kind: DatasetKind, scale: Scale, seed: u64) -> Result<Dataset> {
        let mut d = Dataset::generate(kind, scale, seed)?;
        d.csr = gen::recency_weights(d.csr, seed ^ 0x5745)?;
        Ok(d)
    }

    /// Paper-scale topology bytes, modeling the GPU-resident CSR the paper
    /// uses (32-bit offsets + 32-bit neighbor ids). Table 3 of the paper
    /// computes `Vol_G` the same way.
    ///
    /// Weighted graphs add only a per-*vertex* year array: our edge
    /// weights are a function of the target vertex's registration year
    /// (§3), so a GPU sampler stores `4n` bytes of years and samples by
    /// rejection — per-edge weight/CDF tables would not fit 16 GB for
    /// UK-2006 at all.
    pub fn topo_bytes_paper(&self) -> u64 {
        let n = self.scale.up(self.csr.num_vertices() as f64);
        let m = self.scale.up(self.csr.num_edges() as f64);
        let per_vertex = if self.csr.is_weighted() { 8.0 } else { 4.0 };
        (per_vertex * n + 4.0 * m) as u64
    }

    /// Paper-scale feature bytes (`n * dim * 4`, scaled back up).
    pub fn feature_bytes_paper(&self) -> u64 {
        (self
            .scale
            .up(self.features.num_vertices() as f64 * self.features.row_bytes() as f64))
            as u64
    }

    /// Bytes of one feature row (unscaled; rows are real-size).
    pub fn row_bytes(&self) -> u64 {
        self.features.row_bytes()
    }

    /// Overrides the feature store with a new dimension (virtual), used by
    /// the feature-dimension sweeps (Fig. 4b / Fig. 11c).
    pub fn with_feat_dim(mut self, dim: usize) -> Dataset {
        self.features = FeatureStore::virtual_store(self.csr.num_vertices(), dim);
        self
    }

    /// The paper's mini-batch size (8000) at this dataset's scale, with a
    /// floor of 32 seeds.
    ///
    /// The floor matters for fidelity: in-batch feature deduplication (the
    /// quantity behind every Extract-stage result) requires multiple seeds
    /// sharing hub vertices. A one-seed batch would destroy the dedup the
    /// paper's 8000-seed batches get. Batch *counts* therefore shrink at
    /// extreme scales; the trace layer compensates per-batch kernel-launch
    /// accounting with [`Dataset::paper_batches`].
    pub fn batch_size(&self) -> usize {
        let scaled = self.scale.count(8000, 1);
        // Floor for dedup fidelity, but never fewer than ~24 batches per
        // epoch (trainer parallelism needs batch-count granularity).
        let floor = 8.min(self.train_set.len() / 24).max(1);
        scaled.max(floor)
    }

    /// The paper-scale number of mini-batches per epoch
    /// (`ceil(train_set / 8000)`).
    pub fn paper_batches(&self) -> usize {
        (self.spec.train_set as usize).div_ceil(8000)
    }

    /// Number of mini-batches per epoch at this scale.
    pub fn batches_per_epoch(&self) -> usize {
        self.train_set.len().div_ceil(self.batch_size().max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table3() {
        let pa = DatasetKind::Papers.spec();
        assert_eq!(pa.vertices, 111_000_000);
        assert_eq!(pa.feat_dim, 128);
        assert!((pa.train_fraction() - 0.0108).abs() < 0.001);
        // Paper: PA features = 53 GB; ours computes 56.8 GB (f32 x 128).
        let gb = pa.paper_feature_bytes() as f64 / 1e9;
        assert!(gb > 50.0 && gb < 60.0);
    }

    #[test]
    fn generate_scales_down() {
        let d = Dataset::generate(DatasetKind::Products, Scale::new(1000), 1).unwrap();
        assert_eq!(d.csr.num_vertices(), 2400);
        assert!(d.train_set.len() >= 190 && d.train_set.len() <= 200);
        assert_eq!(d.features.dim(), 100);
        assert_eq!(d.batch_size(), 8);
    }

    #[test]
    fn batch_count_preserved_at_moderate_scale() {
        let a = Dataset::generate(DatasetKind::Products, Scale::new(100), 1).unwrap();
        // Paper-scale: 197k / 8000 = 25 batches; batch 80 > the 32 floor.
        assert_eq!(a.paper_batches(), 25);
        assert_eq!(a.batches_per_epoch(), 25);
        // At extreme scale the 8-seed floor kicks in and batch count drops
        // below the paper's (Papers: 150 paper batches).
        let b = Dataset::generate(DatasetKind::Papers, Scale::new(4000), 1).unwrap();
        assert_eq!(b.batch_size(), 8);
        assert_eq!(b.paper_batches(), 150);
        assert!(b.batches_per_epoch() < b.paper_batches());
    }

    #[test]
    fn twitter_is_more_skewed_than_papers() {
        let s = Scale::new(4096);
        let tw = Dataset::generate(DatasetKind::Twitter, s, 1).unwrap();
        let pa = Dataset::generate(DatasetKind::Papers, s, 1).unwrap();
        let (tw_mean, _, tw_max) = tw.csr.degree_summary();
        let (pa_mean, _, pa_max) = pa.csr.degree_summary();
        let tw_skew = tw_max as f64 / tw_mean;
        let pa_skew = pa_max as f64 / pa_mean;
        assert!(
            tw_skew > 5.0 * pa_skew,
            "tw skew {tw_skew:.1} vs pa skew {pa_skew:.1}"
        );
    }

    #[test]
    fn weighted_variant_has_weights() {
        let d = Dataset::generate_weighted(DatasetKind::Twitter, Scale::new(4096), 1).unwrap();
        assert!(d.csr.is_weighted());
    }

    #[test]
    fn paper_scale_bytes_are_close_to_table3() {
        let d = Dataset::generate(DatasetKind::Papers, Scale::new(2048), 1).unwrap();
        let topo_gb = d.topo_bytes_paper() as f64 / 1e9;
        // Paper: 6.4 GB (4-byte ids + 4-byte offsets).
        assert!(topo_gb > 5.0 && topo_gb < 8.0, "topo {topo_gb:.1} GB");
        let feat_gb = d.feature_bytes_paper() as f64 / 1e9;
        assert!(feat_gb > 48.0 && feat_gb < 62.0, "feat {feat_gb:.1} GB");
    }
}
