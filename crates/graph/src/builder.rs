//! Checked edge-list accumulation and CSR finalization.

use crate::csr::{Csr, VertexId};
use crate::{GraphError, Result};

/// Accumulates edges (optionally weighted) and finalizes them into a [`Csr`].
///
/// Edges are sorted by `(src, dst)` at build time; parallel edges are kept
/// unless [`GraphBuilder::dedup`] is enabled. Self-loops are kept (sampling
/// algorithms treat them like any other edge, matching DGL semantics).
///
/// # Examples
///
/// ```
/// use gnnlab_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_weighted_edge(2, 0, 1.5);
/// b.add_weighted_edge(0, 1, 2.0);
/// let g = b.build().unwrap();
/// assert_eq!(g.neighbors(2), &[0]);
/// assert_eq!(g.edge_weights(0), Some(&[2.0][..]));
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    weights: Vec<f32>,
    any_weight: bool,
    dedup: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
            weights: Vec::new(),
            any_weight: false,
            dedup: false,
        }
    }

    /// Creates a builder with pre-reserved capacity for `num_edges`.
    pub fn with_capacity(num_vertices: usize, num_edges: usize) -> Self {
        let mut b = Self::new(num_vertices);
        b.edges.reserve(num_edges);
        b
    }

    /// Enables deduplication of parallel `(src, dst)` edges at build time.
    /// For weighted graphs, duplicate edges keep the first weight seen
    /// (after sorting, the smallest-weight duplicate is unspecified; dedup
    /// with weights is primarily for generator hygiene).
    pub fn dedup(&mut self) -> &mut Self {
        self.dedup = true;
        self
    }

    /// Adds an unweighted edge `src -> dst`.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) {
        self.edges.push((src, dst));
        self.weights.push(1.0);
    }

    /// Adds a weighted edge `src -> dst`.
    pub fn add_weighted_edge(&mut self, src: VertexId, dst: VertexId, weight: f32) {
        self.edges.push((src, dst));
        self.weights.push(weight);
        self.any_weight = true;
    }

    /// Number of edges accumulated so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalizes into a [`Csr`], validating vertex ranges and weights.
    pub fn build(self) -> Result<Csr> {
        let n = self.num_vertices as u64;
        for &(s, d) in &self.edges {
            if u64::from(s) >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u64::from(s),
                    num_vertices: n,
                });
            }
            if u64::from(d) >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u64::from(d),
                    num_vertices: n,
                });
            }
        }

        // Sort edges by (src, dst), carrying weights along.
        let mut order: Vec<u32> = (0..self.edges.len() as u32).collect();
        order.sort_unstable_by_key(|&i| self.edges[i as usize]);

        let mut sorted_edges = Vec::with_capacity(self.edges.len());
        let mut sorted_weights = Vec::with_capacity(self.edges.len());
        let mut prev: Option<(VertexId, VertexId)> = None;
        for &i in &order {
            let e = self.edges[i as usize];
            if self.dedup && prev == Some(e) {
                continue;
            }
            prev = Some(e);
            sorted_edges.push(e);
            sorted_weights.push(self.weights[i as usize]);
        }

        let mut indptr = vec![0u64; self.num_vertices + 1];
        for &(s, _) in &sorted_edges {
            indptr[s as usize + 1] += 1;
        }
        for i in 0..self.num_vertices {
            indptr[i + 1] += indptr[i];
        }
        let indices: Vec<VertexId> = sorted_edges.iter().map(|&(_, d)| d).collect();

        let csr = Csr::from_parts(indptr, indices)?;
        if self.any_weight {
            csr.with_weights(sorted_weights)
        } else {
            Ok(csr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_csr() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 1);
        b.add_edge(0, 2);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[VertexId]);
        assert_eq!(g.neighbors(2), &[1]);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
        assert!(matches!(
            b.build(),
            Err(GraphError::VertexOutOfRange { vertex: 2, .. })
        ));
    }

    #[test]
    fn dedup_removes_parallel_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.dedup();
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn keeps_parallel_edges_without_dedup() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn weights_follow_edges_through_sorting() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(1, 0, 7.0);
        b.add_weighted_edge(0, 2, 3.0);
        b.add_weighted_edge(0, 1, 2.0);
        let g = b.build().unwrap();
        assert_eq!(g.edge_weights(0).unwrap(), &[2.0, 3.0]);
        assert_eq!(g.edge_weights(1).unwrap(), &[7.0]);
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = GraphBuilder::new(5).build().unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_out_degree(), 0);
    }

    #[test]
    fn self_loops_are_kept() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(1, 1);
        let g = b.build().unwrap();
        assert_eq!(g.neighbors(1), &[1]);
    }
}
