//! Graph substrate for GNNLab-rs.
//!
//! This crate provides everything the sampling, caching and training layers
//! need from the input data side:
//!
//! - [`Csr`]: an immutable compressed-sparse-row graph with optional edge
//!   weights (and lazily built cumulative-weight tables for weighted
//!   sampling).
//! - [`GraphBuilder`]: checked construction from edge lists.
//! - [`gen`]: deterministic synthetic graph generators used to stand in for
//!   the paper's datasets (power-law social/web graphs, low-skew citation
//!   graphs, planted-community graphs for convergence experiments).
//! - [`Dataset`] / [`DatasetSpec`]: a registry of the four datasets from
//!   Table 3 of the paper (OGB-Products, Twitter, OGB-Papers, UK-2006) that
//!   can be instantiated at a configurable [`Scale`].
//! - [`FeatureStore`]: vertex features, either materialized (real `f32`
//!   rows, used by actual training) or virtual (dimension-only byte
//!   accounting, used by performance experiments).
//! - [`trainset`]: deterministic training-set selection.
//! - [`partition`]: the simple edge-cut partitioner + self-reliant L-hop
//!   extension used by the §8 partitioning ablation.
//!
//! All randomness is seeded [`rand_chacha::ChaCha8Rng`], so every structure
//! in this crate is bit-reproducible across runs and platforms.

pub mod builder;
pub mod csr;
pub mod dataset;
pub mod feature;
pub mod gen;
pub mod io;
pub mod partition;
pub mod scale;
pub mod trainset;

pub use builder::GraphBuilder;
pub use csr::{Csr, VertexId};
pub use dataset::{Dataset, DatasetKind, DatasetSpec};
pub use feature::FeatureStore;
pub use scale::Scale;

/// Errors produced while constructing or validating graph structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a vertex id `>= num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The declared number of vertices.
        num_vertices: u64,
    },
    /// A weight array had a different length than the edge array.
    WeightLengthMismatch {
        /// Number of edges.
        edges: usize,
        /// Number of weights provided.
        weights: usize,
    },
    /// A weight was non-finite or negative.
    InvalidWeight {
        /// Index of the offending weight.
        index: usize,
    },
    /// The CSR index arrays were inconsistent.
    MalformedCsr(&'static str),
    /// A requested dataset parameter was out of range.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex id {vertex} out of range (num_vertices = {num_vertices})"
            ),
            GraphError::WeightLengthMismatch { edges, weights } => write!(
                f,
                "weight array length {weights} does not match edge count {edges}"
            ),
            GraphError::InvalidWeight { index } => {
                write!(f, "weight at index {index} is negative or non-finite")
            }
            GraphError::MalformedCsr(msg) => write!(f, "malformed CSR: {msg}"),
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
