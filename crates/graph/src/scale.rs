//! The global scale knob.

/// Scales the paper's testbed down to laptop size while preserving ratios.
///
/// The paper's experiments run 0.1–3 B-edge graphs on 16 GB V100s. We run
/// everything at `1/factor` size: vertex counts, edge counts, training-set
/// sizes and mini-batch sizes are all divided by `factor`. Reported byte
/// and work quantities are multiplied back by `factor` (see
/// `gnnlab-sim::cost`), so:
///
/// - every *capacity ratio* (topology bytes / GPU memory, cache ratio α,
///   …) is identical to the paper's, and
/// - the *number of mini-batches per epoch* is identical to the paper's,
///   so queueing/pipelining/switching dynamics are preserved.
///
/// Statistical quantities (cache hit rates, footprint similarity) are
/// measured directly on the scaled graph; they are unbiased estimates of
/// the full-scale values because the generators preserve distribution
/// shape, not absolute size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    factor: u64,
}

impl Scale {
    /// Full paper scale (factor 1). Do not instantiate datasets at this
    /// scale on a laptop — OGB-Papers alone is 53 GB of features.
    pub const FULL: Scale = Scale { factor: 1 };

    /// Default benchmark scale (1/256 of the paper's sizes).
    pub const BENCH: Scale = Scale { factor: 256 };

    /// Small scale for integration tests (1/2048).
    pub const TEST: Scale = Scale { factor: 2048 };

    /// Creates a scale dividing all sizes by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn new(factor: u64) -> Scale {
        assert!(factor > 0, "scale factor must be positive");
        Scale { factor }
    }

    /// The division factor.
    #[inline]
    pub fn factor(&self) -> u64 {
        self.factor
    }

    /// Scales a count down, keeping at least `min`.
    #[inline]
    pub fn count(&self, paper_count: u64, min: u64) -> usize {
        (paper_count / self.factor).max(min) as usize
    }

    /// Scales a measured quantity back up to paper scale for reporting.
    #[inline]
    pub fn up(&self, measured: f64) -> f64 {
        measured * self.factor as f64
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::BENCH
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_scales_and_clamps() {
        let s = Scale::new(100);
        assert_eq!(s.count(1000, 1), 10);
        assert_eq!(s.count(50, 4), 4);
        assert_eq!(Scale::FULL.count(1000, 1), 1000);
    }

    #[test]
    fn up_reverses_down() {
        let s = Scale::new(256);
        let paper = 1_000_000.0f64;
        let measured = paper / 256.0;
        assert!((s.up(measured) - paper).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_panics() {
        let _ = Scale::new(0);
    }
}
