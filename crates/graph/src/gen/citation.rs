//! Citation-network generator (OGB-Papers stand-in).

use crate::csr::{Csr, VertexId};
use crate::{GraphBuilder, GraphError, Result};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generates a citation-style directed graph.
///
/// Vertices are ordered by "publication time"; each vertex cites only
/// earlier vertices. Two properties of real citation graphs matter to the
/// paper's results and are both reproduced:
///
/// - **Out-degrees are narrow** (papers cite a few dozen references
///   regardless of fame), so the degree-based caching policy has no signal
///   — the §3 motivation for PreSC.
/// - **In-degrees are heavy-tailed** (famous papers are cited by
///   everyone), implemented with global preferential attachment plus a
///   recency window. This concentrates the sampling footprint on a small
///   hub set, which is why a small cache can serve most feature lookups
///   on OGB-Papers.
pub fn citation(num_vertices: usize, num_edges: usize, seed: u64) -> Result<Csr> {
    if num_vertices < 16 {
        return Err(GraphError::InvalidParameter(
            "citation generator needs at least 16 vertices",
        ));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mean_refs = (num_edges as f64 / num_vertices as f64).max(1.0);
    let mut b = GraphBuilder::with_capacity(num_vertices, num_edges);
    // Per-vertex "fame": a mildly heavy-tailed propensity that (a) seeds
    // preferential attachment (famous papers get cited first) and (b)
    // scales the paper's own reference count. The latter gives out-degree
    // a *partial* correlation with citedness — enough that the
    // degree-based cache policy retains some signal on OGB-Papers (the
    // paper measures ~38 % hit rate at a 7 % ratio) without out-degrees
    // becoming power-law.
    let fame: Vec<f32> = (0..num_vertices)
        .map(|_| {
            let u: f32 = rng.gen::<f32>().max(1e-6);
            u.powf(-0.35).min(4.0)
        })
        .collect();
    // Global preferential attachment: citing the target of a uniformly
    // random *existing citation* makes popular papers ever more popular
    // (Yule/Price process), yielding the power-law in-degree tail with
    // long-lived hubs that concentrates the sampling footprint.
    let mut targets: Vec<VertexId> = Vec::with_capacity(num_edges);
    for v in 8..num_vertices {
        // Reference count: narrow base spread, scaled by fame^0.8.
        let base = mean_refs * rng.gen_range(0.7..1.3);
        let refs = ((base * f64::from(fame[v]).powf(0.8) / 1.4) as usize)
            .max(1)
            .min(v);
        for _ in 0..refs {
            let p: f64 = rng.gen();
            let target = if p < 0.90 && !targets.is_empty() {
                // Preferential: re-cite an already-cited paper.
                targets[rng.gen_range(0..targets.len())]
            } else if p < 0.97 {
                // Fresh recent paper: a fame-biased pick from the last
                // 10 % of published papers (famous papers attract their
                // first citations quickly).
                let window = (v / 10).max(1);
                let mut pick = (v - 1 - rng.gen_range(0..window)) as VertexId;
                for _ in 0..2 {
                    let cand = (v - 1 - rng.gen_range(0..window)) as VertexId;
                    if fame[cand as usize] > fame[pick as usize] {
                        pick = cand;
                    }
                }
                pick
            } else {
                // A classic: uniform over all history.
                rng.gen_range(0..v) as VertexId
            };
            b.add_edge(v as VertexId, target);
            targets.push(target);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_point_backwards_in_time() {
        let g = citation(500, 5000, 3).unwrap();
        for v in 0..500u32 {
            for &d in g.neighbors(v) {
                assert!(d < v, "edge {v} -> {d} cites the future");
            }
        }
    }

    #[test]
    fn out_degrees_are_narrow() {
        let g = citation(2000, 40000, 5).unwrap();
        let (mean, p99, max) = g.degree_summary();
        // Moderate spread (fame-scaled references): far from power-law —
        // max out-degree within a small constant of the mean.
        assert!(max as f64 <= mean * 5.0 + 2.0, "max {max} vs mean {mean}");
        assert!(p99 as f64 <= mean * 3.0 + 2.0);
    }

    #[test]
    fn in_degrees_are_heavy_tailed() {
        let g = citation(4000, 80000, 5).unwrap();
        let mut in_deg = vec![0u32; 4000];
        for v in 0..4000u32 {
            for &d in g.neighbors(v) {
                in_deg[d as usize] += 1;
            }
        }
        let mean = 80000.0 / 4000.0;
        let max = *in_deg.iter().max().unwrap() as f64;
        assert!(max > 20.0 * mean, "in-degree max {max} vs mean {mean}");
        // The top 10 % of targets receive the majority of citations.
        let mut sorted = in_deg.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = sorted[..400].iter().map(|&x| u64::from(x)).sum();
        let total: u64 = sorted.iter().map(|&x| u64::from(x)).sum();
        assert!(
            top10 as f64 / total as f64 > 0.5,
            "top-10% share {}",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn roughly_requested_edge_count() {
        let g = citation(1000, 20000, 7).unwrap();
        let e = g.num_edges() as f64;
        assert!(e > 14000.0 && e < 26000.0, "edges {e}");
    }

    #[test]
    fn deterministic() {
        let a = citation(300, 3000, 11).unwrap();
        let b = citation(300, 3000, 11).unwrap();
        for v in 0..300 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn rejects_tiny_graph() {
        assert!(citation(4, 10, 0).is_err());
    }
}
