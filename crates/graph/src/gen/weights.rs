//! Edge-weight generators for weighted-sampling experiments.

use crate::csr::Csr;
use crate::Result;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Attaches "registration year" recency weights to a graph.
///
/// Mirrors the setup in §3 of the paper (Twitter + 3-hop weighted
/// sampling): each vertex gets a registration year, and the weight of edge
/// `u -> v` grows super-linearly with how recent `v` is, so weighted
/// sampling strongly prefers *newer* neighbors. Because recency is assigned
/// independently of degree, this decorrelates sampling frequency from
/// out-degree — exactly the regime where the degree-based cache policy
/// collapses (Fig. 5b).
pub fn recency_weights(csr: Csr, seed: u64) -> Result<Csr> {
    let n = csr.num_vertices();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Year in [0, 1): independent of vertex id and degree.
    let years: Vec<f32> = (0..n).map(|_| rng.gen::<f32>()).collect();
    let mut weights = Vec::with_capacity(csr.num_edges());
    for v in 0..n {
        for &d in csr.neighbors(v as u32) {
            let y = years[d as usize];
            // Strong preference for recent vertices (w ~ year^8): the newest
            // ~10 % of vertices dominate the weighted-sampling footprint,
            // decorrelating it from out-degree. w in (0, ~1000].
            weights.push((y * y).powi(4) * 999.0 + 1.0e-3);
        }
    }
    csr.with_weights(weights)
}

/// Attaches uniform weights (all 1.0); weighted sampling then degenerates
/// to uniform sampling. Used to sanity-check the weighted sampler.
pub fn uniform_weights(csr: Csr) -> Result<Csr> {
    let e = csr.num_edges();
    csr.with_weights(vec![1.0; e])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::chung_lu;

    #[test]
    fn recency_weights_attach_and_are_positive() {
        let g = chung_lu(200, 2000, 2.0, 1).unwrap();
        let g = recency_weights(g, 7).unwrap();
        assert!(g.is_weighted());
        for v in 0..200u32 {
            if let Some(w) = g.edge_weights(v) {
                assert!(w.iter().all(|x| *x > 0.0));
            }
        }
    }

    #[test]
    fn recency_weights_consistent_per_target() {
        // All edges into the same target must share a weight.
        let g = chung_lu(100, 2000, 2.0, 2).unwrap();
        let g = recency_weights(g, 3).unwrap();
        let mut seen: std::collections::HashMap<u32, f32> = Default::default();
        for v in 0..100u32 {
            let nbrs = g.neighbors(v);
            let ws = g.edge_weights(v).unwrap();
            for (d, w) in nbrs.iter().zip(ws) {
                let prev = seen.insert(*d, *w);
                if let Some(p) = prev {
                    assert!((p - w).abs() < 1e-6, "target {d}: {p} vs {w}");
                }
            }
        }
    }

    #[test]
    fn uniform_weights_all_one() {
        let g = chung_lu(50, 300, 2.0, 1).unwrap();
        let g = uniform_weights(g).unwrap();
        assert!(g.edge_weights(0).unwrap().iter().all(|w| *w == 1.0));
    }
}
