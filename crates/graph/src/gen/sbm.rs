//! Stochastic block model with learnable features (convergence substrate).

use crate::csr::{Csr, VertexId};
use crate::{GraphBuilder, GraphError, Result};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters for the planted-community generator.
#[derive(Debug, Clone)]
pub struct SbmParams {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of communities (= number of label classes).
    pub num_classes: usize,
    /// Average out-degree.
    pub avg_degree: f64,
    /// Probability that an edge stays inside its community.
    pub intra_prob: f64,
    /// Feature dimension (must be >= num_classes).
    pub feat_dim: usize,
    /// Std-dev of Gaussian feature noise added to the class signal.
    pub noise: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SbmParams {
    fn default() -> Self {
        SbmParams {
            num_vertices: 2000,
            num_classes: 8,
            avg_degree: 10.0,
            intra_prob: 0.85,
            feat_dim: 16,
            noise: 1.0,
            seed: 0,
        }
    }
}

/// A planted-community graph with features and labels.
///
/// Used by the convergence experiment (Fig. 16): GNN models can genuinely
/// learn on this data, and accuracy is a meaningful quantity. Features are
/// a noisy one-hot community indicator, so a 1-layer model already has
/// signal, and neighborhood aggregation (mostly intra-community edges)
/// denoises it — exactly the mechanism GCN/GraphSAGE exploit.
#[derive(Debug, Clone)]
pub struct SbmGraph {
    /// The graph topology.
    pub csr: Csr,
    /// Row-major `num_vertices x feat_dim` features.
    pub features: Vec<f32>,
    /// Feature dimension.
    pub feat_dim: usize,
    /// Per-vertex class labels in `0..num_classes`.
    pub labels: Vec<u32>,
    /// Number of label classes.
    pub num_classes: usize,
}

/// Generates a stochastic block model graph with features and labels.
pub fn sbm(params: &SbmParams) -> Result<SbmGraph> {
    let SbmParams {
        num_vertices,
        num_classes,
        avg_degree,
        intra_prob,
        feat_dim,
        noise,
        seed,
    } = *params;
    if num_vertices < num_classes || num_classes == 0 {
        return Err(GraphError::InvalidParameter(
            "need at least one vertex per class",
        ));
    }
    if feat_dim < num_classes {
        return Err(GraphError::InvalidParameter(
            "feat_dim must be >= num_classes",
        ));
    }
    if !(0.0..=1.0).contains(&intra_prob) {
        return Err(GraphError::InvalidParameter("intra_prob must be in [0,1]"));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let labels: Vec<u32> = (0..num_vertices)
        .map(|_| rng.gen_range(0..num_classes as u32))
        .collect();
    // Buckets of members per class for fast intra-community target draws.
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); num_classes];
    for (v, &c) in labels.iter().enumerate() {
        members[c as usize].push(v as VertexId);
    }
    let num_edges = (num_vertices as f64 * avg_degree) as usize;
    let mut b = GraphBuilder::with_capacity(num_vertices, num_edges);
    let mut added = 0usize;
    let max_attempts = num_edges.saturating_mul(4).max(16);
    let mut attempts = 0usize;
    while added < num_edges && attempts < max_attempts {
        attempts += 1;
        let s = rng.gen_range(0..num_vertices) as VertexId;
        let c = labels[s as usize] as usize;
        let d = if rng.gen_bool(intra_prob) && members[c].len() > 1 {
            members[c][rng.gen_range(0..members[c].len())]
        } else {
            rng.gen_range(0..num_vertices as VertexId)
        };
        if s == d {
            continue;
        }
        b.add_edge(s, d);
        added += 1;
    }
    let csr = b.build()?;

    // Noisy one-hot features.
    let mut features = vec![0.0f32; num_vertices * feat_dim];
    for v in 0..num_vertices {
        let c = labels[v] as usize;
        for j in 0..feat_dim {
            // Box-Muller Gaussian noise.
            let u1: f32 = rng.gen::<f32>().max(1e-9);
            let u2: f32 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            features[v * feat_dim + j] = if j == c { 1.0 } else { 0.0 } + noise * z;
        }
    }
    Ok(SbmGraph {
        csr,
        features,
        feat_dim,
        labels,
        num_classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_consistent() {
        let g = sbm(&SbmParams::default()).unwrap();
        assert_eq!(g.csr.num_vertices(), 2000);
        assert_eq!(g.labels.len(), 2000);
        assert_eq!(g.features.len(), 2000 * 16);
        assert!(g.labels.iter().all(|&c| c < 8));
    }

    #[test]
    fn most_edges_are_intra_community() {
        let g = sbm(&SbmParams {
            intra_prob: 0.9,
            ..Default::default()
        })
        .unwrap();
        let mut intra = 0usize;
        let mut total = 0usize;
        for v in 0..g.csr.num_vertices() as VertexId {
            for &d in g.csr.neighbors(v) {
                total += 1;
                if g.labels[v as usize] == g.labels[d as usize] {
                    intra += 1;
                }
            }
        }
        assert!(
            intra as f64 / total as f64 > 0.75,
            "intra fraction {}",
            intra as f64 / total as f64
        );
    }

    #[test]
    fn features_carry_class_signal() {
        let g = sbm(&SbmParams {
            noise: 0.1,
            ..Default::default()
        })
        .unwrap();
        // With low noise, argmax of the first num_classes dims recovers the
        // label for most vertices.
        let mut correct = 0usize;
        for v in 0..g.csr.num_vertices() {
            let row = &g.features[v * g.feat_dim..(v + 1) * g.feat_dim];
            let argmax = row[..g.num_classes]
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i as u32)
                .expect("non-empty");
            if argmax == g.labels[v] {
                correct += 1;
            }
        }
        assert!(correct as f64 / 2000.0 > 0.9);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(sbm(&SbmParams {
            num_classes: 0,
            ..Default::default()
        })
        .is_err());
        assert!(sbm(&SbmParams {
            feat_dim: 2,
            num_classes: 8,
            ..Default::default()
        })
        .is_err());
        assert!(sbm(&SbmParams {
            intra_prob: 1.5,
            ..Default::default()
        })
        .is_err());
    }
}
