//! Uniform (Erdős–Rényi style) random graph generator.

use crate::csr::{Csr, VertexId};
use crate::{GraphBuilder, GraphError, Result};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generates a directed graph with `num_edges` uniformly random edges.
///
/// Every ordered pair (excluding self-loops) is equally likely; out-degrees
/// concentrate around `num_edges / num_vertices` (binomial), i.e. the
/// *least* skewed distribution we use. Handy as a control in cache-policy
/// experiments: the degree-based policy has nothing to exploit here.
pub fn uniform(num_vertices: usize, num_edges: usize, seed: u64) -> Result<Csr> {
    if num_vertices < 2 {
        return Err(GraphError::InvalidParameter(
            "uniform generator needs at least 2 vertices",
        ));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(num_vertices, num_edges);
    let n = num_vertices as VertexId;
    let mut added = 0usize;
    while added < num_edges {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        if s == d {
            continue;
        }
        b.add_edge(s, d);
        added += 1;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        let g = uniform(100, 1000, 5).unwrap();
        assert_eq!(g.num_edges(), 1000);
    }

    #[test]
    fn deterministic() {
        let a = uniform(100, 500, 9).unwrap();
        let b = uniform(100, 500, 9).unwrap();
        for v in 0..100 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn degrees_concentrate() {
        let g = uniform(1000, 20000, 11).unwrap();
        let (mean, _, max) = g.degree_summary();
        assert!((mean - 20.0).abs() < 0.5);
        // Binomial tail: max degree stays within a small factor of the mean.
        assert!(max < 60, "max degree {max} too skewed for uniform graph");
    }

    #[test]
    fn rejects_tiny_graph() {
        assert!(uniform(1, 10, 0).is_err());
    }
}
