//! Chung–Lu style power-law graph generator.

use crate::csr::{Csr, VertexId};
use crate::{GraphBuilder, GraphError, Result};
use rand::distributions::{Distribution, WeightedIndex};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Generates a directed graph with a power-law out-degree distribution.
///
/// Vertex `i` receives an expected weight `w_i ∝ (i + 1)^(-1/(exponent-1))`
/// (the standard Chung–Lu transform giving a degree distribution with tail
/// exponent `exponent`). Edge sources are drawn proportionally to `w_i` and
/// destinations likewise, so both in- and out-degrees are skewed — matching
/// social/web graphs such as Twitter and UK-2006.
///
/// `exponent` must be `> 1`; smaller values give heavier tails (Twitter-like
/// graphs are ≈ 1.9–2.2).
///
/// The output keeps parallel edges (real crawls contain them after
/// symmetrization and they are harmless to sampling); self-loops are
/// filtered.
pub fn chung_lu(num_vertices: usize, num_edges: usize, exponent: f64, seed: u64) -> Result<Csr> {
    if num_vertices == 0 {
        return Err(GraphError::InvalidParameter("num_vertices must be > 0"));
    }
    if exponent <= 1.0 || exponent.is_nan() {
        return Err(GraphError::InvalidParameter("exponent must be > 1"));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let gamma = 1.0 / (exponent - 1.0);
    let weights: Vec<f64> = (0..num_vertices)
        .map(|i| ((i + 1) as f64).powf(-gamma))
        .collect();
    let dist = WeightedIndex::new(&weights)
        .map_err(|_| GraphError::InvalidParameter("degenerate weight distribution"))?;

    let mut b = GraphBuilder::with_capacity(num_vertices, num_edges);
    let mut added = 0usize;
    // Cap attempts so pathological parameters (e.g. 1 vertex) terminate.
    let max_attempts = num_edges.saturating_mul(4).max(16);
    let mut attempts = 0usize;
    while added < num_edges && attempts < max_attempts {
        attempts += 1;
        let s = dist.sample(&mut rng) as VertexId;
        let d = dist.sample(&mut rng) as VertexId;
        if s == d {
            continue;
        }
        b.add_edge(s, d);
        added += 1;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_size() {
        let g = chung_lu(1000, 8000, 2.0, 1).unwrap();
        assert_eq!(g.num_vertices(), 1000);
        assert!(g.num_edges() >= 7000, "got {}", g.num_edges());
    }

    #[test]
    fn is_deterministic() {
        let a = chung_lu(500, 3000, 2.1, 42).unwrap();
        let b = chung_lu(500, 3000, 2.1, 42).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        for v in 0..500 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = chung_lu(500, 3000, 2.1, 1).unwrap();
        let b = chung_lu(500, 3000, 2.1, 2).unwrap();
        let same = (0..500u32).all(|v| a.neighbors(v) == b.neighbors(v));
        assert!(!same);
    }

    #[test]
    fn low_exponent_is_more_skewed() {
        let heavy = chung_lu(2000, 20000, 1.8, 7).unwrap();
        let light = chung_lu(2000, 20000, 3.5, 7).unwrap();
        let (_, _, max_heavy) = heavy.degree_summary();
        let (_, _, max_light) = light.degree_summary();
        assert!(
            max_heavy > 2 * max_light,
            "heavy tail max {max_heavy} vs light {max_light}"
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(chung_lu(0, 10, 2.0, 1).is_err());
        assert!(chung_lu(10, 10, 1.0, 1).is_err());
        assert!(chung_lu(10, 10, 0.5, 1).is_err());
    }

    #[test]
    fn no_self_loops() {
        let g = chung_lu(300, 3000, 2.0, 3).unwrap();
        for v in 0..300u32 {
            assert!(!g.neighbors(v).contains(&v));
        }
    }
}
