//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on four real graphs (Table 3). We cannot ship those,
//! so each is replaced by a generator that reproduces the property the
//! paper's results actually depend on:
//!
//! | Paper dataset | Property that matters | Generator |
//! |---|---|---|
//! | Twitter (TW) | highly skewed power-law out-degrees | [`chung_lu`] with exponent ≈ 1.9 |
//! | UK-2006 (UK) | web graph, skewed but with locality | [`chung_lu`] with exponent ≈ 2.1 |
//! | OGB-Papers (PA) | citation graph, *low-skew* out-degrees (references per paper), tiny training set | [`citation`] |
//! | OGB-Products (PR) | co-purchase network, moderate skew, small | [`chung_lu`] with exponent ≈ 2.6 |
//!
//! [`recency_weights`] reproduces the weighted-sampling setup of §3/§7.4:
//! every vertex gets a "registration year" and edge weights prefer newer
//! targets, so weighted sampling diverges from degree ranking.
//!
//! [`sbm`] generates a planted-community graph with learnable features and
//! labels for the convergence experiment (Fig. 16).

mod chung_lu;
mod citation;
mod rmat;
mod sbm;
mod uniform;
mod weights;

pub use chung_lu::chung_lu;
pub use citation::citation;
pub use rmat::rmat;
pub use sbm::{sbm, SbmGraph, SbmParams};
pub use uniform::uniform;
pub use weights::{recency_weights, uniform_weights};
