//! R-MAT recursive-matrix graph generator.

use crate::csr::{Csr, VertexId};
use crate::{GraphBuilder, GraphError, Result};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generates a directed graph with the classic R-MAT recursive procedure.
///
/// The adjacency matrix of a `2^scale`-vertex graph is subdivided into four
/// quadrants with probabilities `(a, b, c, d)`; each edge recursively
/// descends into a quadrant until a single cell is reached. Skew grows with
/// `a`; the Graph500 parameters `(0.57, 0.19, 0.19, 0.05)` are a good
/// default for power-law graphs.
///
/// `a + b + c + d` must sum to 1 (±1e-6), each in `[0, 1]`.
pub fn rmat(scale: u32, num_edges: usize, probs: (f64, f64, f64, f64), seed: u64) -> Result<Csr> {
    let (a, b, c, d) = probs;
    let sum = a + b + c + d;
    if !(0.999_999..=1.000_001).contains(&sum) || [a, b, c, d].iter().any(|p| *p < 0.0) {
        return Err(GraphError::InvalidParameter(
            "rmat probabilities must be non-negative and sum to 1",
        ));
    }
    if scale == 0 || scale > 31 {
        return Err(GraphError::InvalidParameter("rmat scale must be in 1..=31"));
    }
    let n = 1usize << scale;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, num_edges);
    let mut added = 0usize;
    let max_attempts = num_edges.saturating_mul(4).max(16);
    let mut attempts = 0usize;
    while added < num_edges && attempts < max_attempts {
        attempts += 1;
        let (mut lo_r, mut lo_c) = (0usize, 0usize);
        let mut half = n >> 1;
        while half > 0 {
            let p: f64 = rng.gen();
            if p < a {
                // top-left: nothing to add
            } else if p < a + b {
                lo_c += half;
            } else if p < a + b + c {
                lo_r += half;
            } else {
                lo_r += half;
                lo_c += half;
            }
            half >>= 1;
        }
        if lo_r == lo_c {
            continue;
        }
        builder.add_edge(lo_r as VertexId, lo_c as VertexId);
        added += 1;
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    const G500: (f64, f64, f64, f64) = (0.57, 0.19, 0.19, 0.05);

    #[test]
    fn produces_power_law_skew() {
        let g = rmat(12, 40000, G500, 1).unwrap();
        let (mean, _, max) = g.degree_summary();
        assert!(max as f64 > mean * 10.0, "max {max} mean {mean}");
    }

    #[test]
    fn uniform_probs_are_not_skewed() {
        let g = rmat(12, 40000, (0.25, 0.25, 0.25, 0.25), 1).unwrap();
        let (mean, _, max) = g.degree_summary();
        assert!((max as f64) < mean * 6.0, "max {max} mean {mean}");
    }

    #[test]
    fn deterministic() {
        let a = rmat(10, 5000, G500, 42).unwrap();
        let b = rmat(10, 5000, G500, 42).unwrap();
        for v in 0..a.num_vertices() as VertexId {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn rejects_bad_probs() {
        assert!(rmat(10, 100, (0.5, 0.5, 0.5, 0.5), 1).is_err());
        assert!(rmat(10, 100, (-0.1, 0.5, 0.3, 0.3), 1).is_err());
        assert!(rmat(0, 100, G500, 1).is_err());
        assert!(rmat(32, 100, G500, 1).is_err());
    }
}
