//! Graph partitioning and self-reliance analysis (§8 ablation).
//!
//! The paper's §8 discusses a partitioning-based alternative: split graph
//! topology + features across GPUs. One variant needs each partition to be
//! *self-reliant* — extended with all L-hop neighbors of its training
//! vertices — and the paper reports that on Twitter each of 8 partitions
//! would need >95 % of all vertices. This module implements the hash
//! partitioner and the L-hop closure measurement that regenerates that
//! claim.

use crate::csr::{Csr, VertexId};

/// Assigns each training vertex to one of `num_parts` partitions by a
/// simple deterministic hash (multiplicative hashing on the vertex id).
pub fn hash_partition(train_set: &[VertexId], num_parts: usize) -> Vec<Vec<VertexId>> {
    assert!(num_parts > 0, "need at least one partition");
    let mut parts = vec![Vec::new(); num_parts];
    for &v in train_set {
        let h = (u64::from(v).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 33;
        parts[(h as usize) % num_parts].push(v);
    }
    parts
}

/// Computes the L-hop out-neighborhood closure of `seeds`: every vertex
/// reachable within `hops` edges. This is the vertex set a self-reliant
/// partition must carry so that `hops`-hop sampling never leaves the
/// partition.
pub fn l_hop_closure(csr: &Csr, seeds: &[VertexId], hops: usize) -> Vec<VertexId> {
    let n = csr.num_vertices();
    let mut visited = vec![false; n];
    let mut frontier: Vec<VertexId> = Vec::new();
    for &s in seeds {
        if !visited[s as usize] {
            visited[s as usize] = true;
            frontier.push(s);
        }
    }
    for _ in 0..hops {
        let mut next = Vec::new();
        for &v in &frontier {
            for &d in csr.neighbors(v) {
                if !visited[d as usize] {
                    visited[d as usize] = true;
                    next.push(d);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    let mut out: Vec<VertexId> = visited
        .iter()
        .enumerate()
        .filter_map(|(i, &v)| v.then_some(i as VertexId))
        .collect();
    out.sort_unstable();
    out
}

/// Result of the self-reliance redundancy measurement.
#[derive(Debug, Clone)]
pub struct RedundancyReport {
    /// Number of partitions analyzed.
    pub num_parts: usize,
    /// For each partition, the fraction of all vertices its self-reliant
    /// L-hop extension must contain.
    pub closure_fractions: Vec<f64>,
}

impl RedundancyReport {
    /// Mean closure fraction across partitions.
    pub fn mean_fraction(&self) -> f64 {
        if self.closure_fractions.is_empty() {
            return 0.0;
        }
        self.closure_fractions.iter().sum::<f64>() / self.closure_fractions.len() as f64
    }
}

/// Measures how much of the whole graph each of `num_parts` self-reliant
/// partitions would need to carry for `hops`-hop sampling.
pub fn self_reliance_redundancy(
    csr: &Csr,
    train_set: &[VertexId],
    num_parts: usize,
    hops: usize,
) -> RedundancyReport {
    let parts = hash_partition(train_set, num_parts);
    let n = csr.num_vertices().max(1) as f64;
    let closure_fractions = parts
        .iter()
        .map(|p| l_hop_closure(csr, p, hops).len() as f64 / n)
        .collect();
    RedundancyReport {
        num_parts,
        closure_fractions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::chung_lu;
    use crate::GraphBuilder;

    fn path_graph(n: usize) -> Csr {
        let mut b = GraphBuilder::new(n);
        for v in 0..n - 1 {
            b.add_edge(v as VertexId, (v + 1) as VertexId);
        }
        b.build().unwrap()
    }

    #[test]
    fn hash_partition_covers_all_and_balances() {
        let ts: Vec<VertexId> = (0..1000).collect();
        let parts = hash_partition(&ts, 8);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 1000);
        for p in &parts {
            assert!(p.len() > 60 && p.len() < 190, "unbalanced: {}", p.len());
        }
    }

    #[test]
    fn closure_on_path_graph() {
        let g = path_graph(10);
        assert_eq!(l_hop_closure(&g, &[0], 0), vec![0]);
        assert_eq!(l_hop_closure(&g, &[0], 2), vec![0, 1, 2]);
        assert_eq!(l_hop_closure(&g, &[7], 5), vec![7, 8, 9]);
    }

    #[test]
    fn closure_deduplicates_seeds() {
        let g = path_graph(5);
        assert_eq!(l_hop_closure(&g, &[1, 1, 1], 1), vec![1, 2]);
    }

    #[test]
    fn power_law_graphs_have_huge_closures() {
        // The §8 claim: on a skewed graph, even a fraction of the training
        // set reaches most of the graph within 3 hops.
        let g = chung_lu(2000, 40000, 1.9, 1).unwrap();
        let ts: Vec<VertexId> = (0..200).collect();
        let rep = self_reliance_redundancy(&g, &ts, 8, 3);
        assert_eq!(rep.num_parts, 8);
        assert!(
            rep.mean_fraction() > 0.5,
            "mean closure {:.2}",
            rep.mean_fraction()
        );
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_parts_panics() {
        let _ = hash_partition(&[1, 2, 3], 0);
    }
}
