//! `gnnlab` — the command-line front door to the library.
//!
//! ```text
//! gnnlab generate <PR|TW|PA|UK> <scale> <out.bin>     synthesize a dataset's graph to disk
//! gnnlab inspect  <graph.bin|edges.txt>               print graph statistics
//! gnnlab policies <PR|TW|PA|UK> [scale]               cache-policy hit-rate table
//! gnnlab simulate <PR|TW|PA|UK> <GCN|GSG|PSG> [gpus]  one epoch on every system
//! gnnlab job      <PR|TW|PA|UK> <GCN|GSG|PSG> [epochs] full-job summary incl. preprocessing
//! gnnlab threaded [options]                           real threaded run w/ fault injection
//! ```
//!
//! `gnnlab threaded` options:
//!
//! ```text
//! --samplers N --trainers N --epochs N --batch-size N --capacity N --seed S
//! --threads N                 data-parallel width of Extract/pre-sampling
//! --pipeline-depth 0|1        0 = serial consumer loop (reference path);
//!                             1 = double-buffered extract prefetch +
//!                             burst queue handoff (default)
//! --crash-trainer IDX@BATCH   kill Trainer IDX after BATCH batches
//! --crash-sampler IDX@BATCH   kill Sampler IDX after BATCH batches
//! --straggler ROLE:IDX:FACTOR slow one executor (role `sampler`/`trainer`)
//! --transient P               per-batch transient-fault probability
//! --max-respawns N            supervisor respawn budget (0 = fail fast)
//! --metrics-addr HOST:PORT    serve live metrics over HTTP during the run
//!                             (GET /metrics = Prometheus text, /metrics.json)
//! --metrics-out PATH          write the final metrics JSON (incl. alerts)
//! --series-cap N              per-series retention cap (default 8192)
//! --checkpoint-dir PATH       durable checkpoint directory (enables checkpointing)
//! --checkpoint-every N        checkpoint every N trained batches
//!                             (default: every epoch boundary)
//! --checkpoint-secs T         also checkpoint every T wall seconds
//! --resume                    resume from the latest valid generation in
//!                             --checkpoint-dir (torn files are skipped)
//! ```
//!
//! A telemetry thread samples gauges (queue depth, per-executor EWMAs)
//! into bounded series and evaluates alert rules (straggler, queue
//! saturation, cache collapse, respawn-budget burn, checkpoint stall);
//! fired alerts print after the recovery report and land in
//! `--metrics-out`.
//!
//! `gnnlab threaded` exit codes:
//!
//! ```text
//!  0  success
//!  1  generic failure (graph generation, metrics-out write)
//!  2  usage error
//!  3  metrics endpoint could not be bound
//! 10  executor panic with no respawn budget
//! 11  respawn budget exhausted
//! 12  unrecoverable transient fault
//! 13  checkpoint write/resume failure
//! 14  chaos kill-point terminated the run
//! ```

use gnnlab::cache::PolicyKind;
use gnnlab::core::driver::run_job;
use gnnlab::core::report::RunError;
use gnnlab::core::runtime::{build_cache_table, run_system, SimContext};
use gnnlab::core::threaded::{run_threaded_obs, ThreadedConfig};
use gnnlab::core::trace::EpochTrace;
use gnnlab::core::{ExecutorRole, FaultPlan, SystemKind, Workload};
use gnnlab::graph::gen::{sbm, SbmParams};
use gnnlab::graph::{io, Dataset, DatasetKind, Scale};
use gnnlab::obs::{MetricsServer, Obs};
use gnnlab::sampling::Kernel;
use gnnlab::tensor::ModelKind;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

fn dataset_kind(s: &str) -> Option<DatasetKind> {
    match s.to_ascii_uppercase().as_str() {
        "PR" => Some(DatasetKind::Products),
        "TW" => Some(DatasetKind::Twitter),
        "PA" => Some(DatasetKind::Papers),
        "UK" => Some(DatasetKind::Uk),
        _ => None,
    }
}

fn model_kind(s: &str) -> Option<ModelKind> {
    match s.to_ascii_uppercase().as_str() {
        "GCN" => Some(ModelKind::Gcn),
        "GSG" | "GRAPHSAGE" => Some(ModelKind::GraphSage),
        "PSG" | "PINSAGE" => Some(ModelKind::PinSage),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  gnnlab generate <PR|TW|PA|UK> <scale> <out.bin>\n  \
         gnnlab inspect <graph.bin|edges.txt>\n  \
         gnnlab policies <PR|TW|PA|UK> [scale]\n  \
         gnnlab simulate <PR|TW|PA|UK> <GCN|GSG|PSG> [gpus]\n  \
         gnnlab job <PR|TW|PA|UK> <GCN|GSG|PSG> [epochs]\n  \
         gnnlab threaded [--samplers N] [--trainers N] [--epochs N] [--batch-size N]\n           \
         [--capacity N] [--seed S] [--threads N] [--pipeline-depth 0|1]\n           \
         [--crash-trainer IDX@BATCH]\n           \
         [--crash-sampler IDX@BATCH] [--straggler ROLE:IDX:FACTOR] [--transient P]\n           \
         [--max-respawns N] [--metrics-addr HOST:PORT] [--metrics-out PATH]\n           \
         [--series-cap N] [--checkpoint-dir PATH] [--checkpoint-every N]\n           \
         [--checkpoint-secs T] [--resume]"
    );
    ExitCode::from(2)
}

fn cmd_generate(args: &[String]) -> ExitCode {
    let (Some(kind), Some(scale), Some(out)) = (
        args.first().and_then(|s| dataset_kind(s)),
        args.get(1).and_then(|s| s.parse::<u64>().ok()),
        args.get(2),
    ) else {
        return usage();
    };
    let d = Dataset::generate(kind, Scale::new(scale.max(1)), 42).expect("valid parameters");
    if let Err(e) = io::write_binary(&d.csr, Path::new(out)) {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{}: {} vertices, {} edges at scale 1/{} -> {out}",
        d.spec.name,
        d.csr.num_vertices(),
        d.csr.num_edges(),
        scale
    );
    ExitCode::SUCCESS
}

fn cmd_inspect(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let p = Path::new(path);
    let graph = if path.ends_with(".bin") {
        io::read_binary(p)
    } else {
        io::read_edge_list(p, None)
    };
    match graph {
        Ok(g) => {
            let (mean, p99, max) = g.degree_summary();
            println!("vertices:    {}", g.num_vertices());
            println!("edges:       {}", g.num_edges());
            println!("weighted:    {}", g.is_weighted());
            println!("out-degree:  mean {mean:.1}, p99 {p99}, max {max}");
            println!(
                "topology:    {:.1} MB in memory",
                g.topology_bytes() as f64 / 1e6
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("read failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_policies(args: &[String]) -> ExitCode {
    let Some(kind) = args.first().and_then(|s| dataset_kind(s)) else {
        return usage();
    };
    let scale = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1024);
    let w = Workload::new(ModelKind::Gcn, kind, Scale::new(scale), 42);
    let trace = EpochTrace::record(&w, Kernel::FisherYates, 5);
    println!(
        "{}: 3-hop uniform sampling, hit rates by cache ratio\n",
        w.dataset.spec.name
    );
    print!("{:<8}", "ratio");
    let policies = [
        PolicyKind::Random,
        PolicyKind::Degree,
        PolicyKind::PreSC { k: 1 },
        PolicyKind::Optimal { epochs: 6 },
    ];
    for p in policies {
        print!("{:>10}", p.label());
    }
    println!();
    for alpha in [0.02, 0.05, 0.10, 0.20] {
        print!("{:<8}", format!("{:.0}%", alpha * 100.0));
        for p in policies {
            let table = build_cache_table(&w, p, alpha);
            let mut stats = gnnlab::cache::CacheStats::default();
            for b in &trace.batches {
                stats.record(&table, &b.input_nodes, w.dataset.row_bytes());
            }
            print!("{:>10}", format!("{:.0}%", stats.hit_rate() * 100.0));
        }
        println!();
    }
    ExitCode::SUCCESS
}

fn cmd_simulate(args: &[String]) -> ExitCode {
    let (Some(kind), Some(model)) = (
        args.first().and_then(|s| dataset_kind(s)),
        args.get(1).and_then(|s| model_kind(s)),
    ) else {
        return usage();
    };
    let gpus = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let w = Workload::new(model, kind, Scale::new(1024), 42);
    println!(
        "{} on {} GPUs (scale 1/1024; simulated paper-scale seconds)\n",
        w.label(),
        gpus
    );
    for system in SystemKind::ALL {
        let ctx = SimContext::new(&w, system).with_gpus(gpus);
        match run_system(&ctx) {
            Ok(r) => {
                let detail = if system == SystemKind::GnnLab {
                    format!(
                        " ({}S{}T, cache {:.0}%, hit {:.0}%)",
                        r.num_samplers,
                        r.num_trainers,
                        r.cache_ratio * 100.0,
                        r.hit_rate * 100.0
                    )
                } else {
                    String::new()
                };
                println!("{:<8} {:>8.2} s{}", system.label(), r.epoch_time, detail);
            }
            Err(RunError::Oom { detail, .. }) => {
                println!("{:<8}      OOM ({detail})", system.label())
            }
            Err(RunError::Unsupported(m)) => println!("{:<8}        x ({m})", system.label()),
            Err(RunError::ExecutorsLost { detail }) => {
                println!("{:<8}     LOST ({detail})", system.label())
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_job(args: &[String]) -> ExitCode {
    let (Some(kind), Some(model)) = (
        args.first().and_then(|s| dataset_kind(s)),
        args.get(1).and_then(|s| model_kind(s)),
    ) else {
        return usage();
    };
    let epochs = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);
    let w = Workload::new(model, kind, Scale::new(1024), 42);
    let ctx = SimContext::new(&w, SystemKind::GnnLab);
    match run_job(&ctx, epochs) {
        Ok(s) => {
            println!("{} on GNNLab, {} epochs:", w.label(), epochs);
            println!("  P1 disk->DRAM:    {:>8.2} s", s.preprocess.disk_to_dram);
            println!("  P2 DRAM->GPU:     {:>8.2} s", s.preprocess.dram_to_gpu());
            println!("  P3 pre-sampling:  {:>8.2} s", s.preprocess.presampling);
            println!(
                "  epoch time:       {:>8.2} s x {}",
                s.epoch.epoch_time, s.epochs
            );
            println!("  total job:        {:>8.2} s", s.total_time);
            println!(
                "  preprocessing is {:.1}% of the job",
                s.preprocess_fraction * 100.0
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("job failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `IDX@BATCH` (e.g. `0@3`).
fn parse_crash(s: &str) -> Option<(usize, usize)> {
    let (idx, after) = s.split_once('@')?;
    Some((idx.parse().ok()?, after.parse().ok()?))
}

/// Parses `ROLE:IDX:FACTOR` (e.g. `trainer:1:8`).
fn parse_straggler(s: &str) -> Option<(ExecutorRole, usize, f64)> {
    let mut parts = s.split(':');
    let role = match parts.next()?.to_ascii_lowercase().as_str() {
        "sampler" | "s" => ExecutorRole::Sampler,
        "trainer" | "t" => ExecutorRole::Trainer,
        _ => return None,
    };
    let idx = parts.next()?.parse().ok()?;
    let factor = parts.next()?.parse().ok()?;
    (parts.next().is_none() && factor >= 1.0).then_some((role, idx, factor))
}

fn cmd_threaded(args: &[String]) -> ExitCode {
    let mut cfg = ThreadedConfig {
        num_samplers: 2,
        num_trainers: 2,
        epochs: 3,
        batch_size: 20,
        queue_capacity: 4,
        ..Default::default()
    };
    let mut plan = FaultPlan::none();
    let mut metrics_addr: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut series_cap: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        // Boolean flags take no value.
        if flag == "--resume" {
            cfg.checkpoint.resume = true;
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("{flag} requires a value");
            return usage();
        };
        let mut ok = true;
        match flag {
            "--samplers" => ok = value.parse().map(|v| cfg.num_samplers = v).is_ok(),
            "--trainers" => ok = value.parse().map(|v| cfg.num_trainers = v).is_ok(),
            "--epochs" => ok = value.parse().map(|v| cfg.epochs = v).is_ok(),
            "--batch-size" => ok = value.parse().map(|v| cfg.batch_size = v).is_ok(),
            "--capacity" => ok = value.parse().map(|v| cfg.queue_capacity = v).is_ok(),
            "--seed" => ok = value.parse().map(|v| cfg.seed = v).is_ok(),
            // 0 = the serial reference consumer loop; 1 = double-buffered
            // extract prefetch with burst queue handoff (the default).
            "--pipeline-depth" => match value.parse::<usize>() {
                Ok(d) if d <= 1 => cfg.pipeline_depth = d,
                _ => ok = false,
            },
            "--threads" => {
                ok = value
                    .parse()
                    .map(|v: usize| {
                        cfg.threads = v.max(1);
                        // Paths outside the run's own pool (gather_features,
                        // large matmuls) follow the same width.
                        gnnlab::par::set_global_threads(cfg.threads);
                    })
                    .is_ok()
            }
            "--max-respawns" => {
                ok = value
                    .parse()
                    .map(|v| plan = plan.clone().with_max_respawns(v))
                    .is_ok()
            }
            "--crash-trainer" => match parse_crash(value) {
                Some((idx, after)) => {
                    plan = plan.clone().with_crash(ExecutorRole::Trainer, idx, after)
                }
                None => ok = false,
            },
            "--crash-sampler" => match parse_crash(value) {
                Some((idx, after)) => {
                    plan = plan.clone().with_crash(ExecutorRole::Sampler, idx, after)
                }
                None => ok = false,
            },
            "--straggler" => match parse_straggler(value) {
                Some((role, idx, f)) => plan = plan.clone().with_straggler(role, idx, f),
                None => ok = false,
            },
            "--transient" => match value.parse::<f64>() {
                Ok(p) if (0.0..=1.0).contains(&p) => {
                    plan = plan.clone().with_transients(p, 2);
                }
                _ => ok = false,
            },
            "--metrics-addr" => metrics_addr = Some(value.clone()),
            "--metrics-out" => metrics_out = Some(value.clone()),
            "--series-cap" => ok = value.parse().map(|v| series_cap = Some(v)).is_ok(),
            "--checkpoint-dir" => {
                cfg.checkpoint.dir = Some(std::path::PathBuf::from(value));
                cfg.checkpoint.epoch_boundaries = true;
            }
            "--checkpoint-every" => {
                ok = value
                    .parse()
                    .map(|v: usize| cfg.checkpoint.every_batches = Some(v.max(1)))
                    .is_ok()
            }
            "--checkpoint-secs" => match value.parse::<f64>() {
                Ok(t) if t > 0.0 => cfg.checkpoint.every_secs = Some(t),
                _ => ok = false,
            },
            _ => {
                eprintln!("unknown flag {flag}");
                return usage();
            }
        }
        if !ok {
            eprintln!("bad value for {flag}: {value}");
            return usage();
        }
        i += 2;
    }
    cfg.faults = plan.with_seed(cfg.seed);
    if (cfg.checkpoint.resume
        || cfg.checkpoint.every_batches.is_some()
        || cfg.checkpoint.every_secs.is_some())
        && cfg.checkpoint.dir.is_none()
    {
        eprintln!("checkpoint flags require --checkpoint-dir");
        return usage();
    }

    let g = match sbm(&SbmParams {
        num_vertices: 600,
        num_classes: 4,
        avg_degree: 10.0,
        intra_prob: 0.9,
        feat_dim: 8,
        noise: 0.5,
        seed: cfg.seed,
    }) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("graph generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "threaded run: {}S + {}T, {} epochs, batch {}, queue capacity {}",
        cfg.num_samplers, cfg.num_trainers, cfg.epochs, cfg.batch_size, cfg.queue_capacity
    );
    let obs = Arc::new(Obs::wall());
    if let Some(cap) = series_cap {
        obs.metrics.set_series_cap(cap);
    }
    let server = match metrics_addr.as_ref() {
        Some(addr) => match MetricsServer::bind(addr, Arc::clone(&obs)) {
            Ok(server) => {
                eprintln!(
                    "[serving live metrics on http://{}/metrics (and /metrics.json)]",
                    server.local_addr()
                );
                Some(server)
            }
            // Typed endpoint failure: report and exit 3 through the
            // normal return path (no process::exit, so Drop impls run).
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(3);
            }
        },
        None => None,
    };
    let outcome = run_threaded_obs(&g, ModelKind::GraphSage, &cfg, &obs);
    let code = match outcome {
        Ok(res) => {
            println!("  produced:      {:>8} batches", res.samples_produced);
            println!("  trained:       {:>8} batches", res.batches_trained);
            println!("  accuracy:      {:>8.3}", res.final_accuracy);
            println!("  peak depth:    {:>8}", res.peak_queue_depth);
            println!("  switches:      {:>8}", res.switches);
            if cfg.checkpoint.enabled() {
                println!("  checkpoints:   {:>8} written", res.checkpoints_written);
                match res.resumed_from {
                    Some(generation) => {
                        println!("  resumed from:  {:>8}", format!("gen {generation}"))
                    }
                    None => println!("  resumed from:  {:>8}", "fresh"),
                }
            }
            let r = &res.recovery;
            println!("recovery report:");
            println!("  faults:        {:>8}", r.faults_injected);
            println!("  replayed:      {:>8} batches", r.replayed_batches);
            println!("  respawns:      {:>8}", r.respawns);
            println!("  reassignments: {:>8}", r.reassignments);
            println!("  retries:       {:>8}", r.retries);
            println!("  downtime:      {:>8.3} ms", r.downtime_ns as f64 / 1e6);
            let alerts = obs.metrics.alerts();
            if alerts.is_empty() {
                println!("alerts:          none");
            } else {
                println!("alerts:");
                for a in &alerts {
                    println!(
                        "  {:<16} {:<12} {} (value {:.3}, threshold {:.3})",
                        a.rule, a.subject, a.message, a.value, a.threshold
                    );
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("run failed: {e}");
            // Each failure class has its own documented exit code (see
            // the module docs), so wrappers and CI can react precisely.
            ExitCode::from(e.kind.exit_code())
        }
    };
    if let Some(path) = &metrics_out {
        match obs.write_metrics_json(Path::new(path)) {
            Ok(()) => eprintln!("[wrote metrics to {path}]"),
            Err(e) => {
                eprintln!("failed to write metrics to {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(server) = server {
        server.shutdown();
    }
    code
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("policies") => cmd_policies(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("job") => cmd_job(&args[1..]),
        Some("threaded") => cmd_threaded(&args[1..]),
        _ => usage(),
    }
}
