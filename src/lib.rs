//! GNNLab-rs: a factored system for sample-based GNN training over
//! (simulated) GPUs.
//!
//! This is the facade crate: it re-exports the public API of every
//! workspace crate. See `README.md` for a tour and `DESIGN.md` for the
//! system inventory.

pub use gnnlab_cache as cache;
pub use gnnlab_core as core;
pub use gnnlab_graph as graph;
pub use gnnlab_obs as obs;
pub use gnnlab_par as par;
pub use gnnlab_sampling as sampling;
pub use gnnlab_sim as sim;
pub use gnnlab_tensor as tensor;
