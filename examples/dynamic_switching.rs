//! Dynamic executor switching on a skewed workload (§5.3 / §7.8).
//!
//! PinSAGE's Train stage is ~10× slower than its Sample stage, so on a
//! machine with few GPUs the lone Sampler GPU would idle most of the
//! epoch. This example sweeps the GPU count and shows the profit-metric
//! driven standby Trainers closing the gap, plus the single-GPU
//! alternating mode (§7.9).
//!
//! Run with: `cargo run --release --example dynamic_switching`

use gnnlab::core::runtime::{
    profile_stage_times, run_factored_epoch, run_single_gpu_epoch, SimContext,
};
use gnnlab::core::trace::EpochTrace;
use gnnlab::core::{SystemKind, Workload};
use gnnlab::graph::{DatasetKind, Scale};
use gnnlab::sampling::Kernel;
use gnnlab::tensor::ModelKind;

fn main() {
    let w = Workload::new(
        ModelKind::PinSage,
        DatasetKind::Papers,
        Scale::new(1024),
        42,
    );
    let ctx = SimContext::new(&w, SystemKind::GnnLab);
    let trace = EpochTrace::record(&w, Kernel::FisherYates, ctx.epoch);

    let times = profile_stage_times(&ctx, &trace).expect("PA fits");
    println!(
        "PinSAGE on OGB-Papers: profiled T_s = {:.1} ms, T_t = {:.1} ms  (K = {:.1})\n",
        times.t_sample * 1e3,
        times.t_trainer * 1e3,
        times.t_trainer / times.t_sample
    );

    println!(
        "{:<18} {:>12} {:>12} {:>10} {:>10}",
        "Config", "w/o DS", "w/ DS", "gain", "switched"
    );
    for nt in 1..=6usize {
        let without = run_factored_epoch(&ctx, &trace, 1, nt, false).expect("fits");
        let with = run_factored_epoch(&ctx, &trace, 1, nt, true).expect("fits");
        println!(
            "{:<18} {:>11.2}s {:>11.2}s {:>9.2}x {:>10}",
            format!("1 Sampler + {nt}T"),
            without.epoch_time,
            with.epoch_time,
            without.epoch_time / with.epoch_time,
            with.switched_batches
        );
    }

    let single_ctx = SimContext::new(&w, SystemKind::GnnLab).with_gpus(1);
    let single = run_single_gpu_epoch(&single_ctx, &trace).expect("fits");
    println!(
        "\nSingle-GPU alternating mode: {:.2} s/epoch (cache ratio {:.0}%, hit {:.0}%)",
        single.epoch_time,
        single.cache_ratio * 100.0,
        single.hit_rate * 100.0
    );
    println!(
        "The profit metric P = M_r * T_t / N_t - T_t' wakes standby Trainers only while\n\
         the queue backlog justifies it, so gains shrink as normal Trainers are added."
    );
}
