//! The factored architecture as a real concurrent program.
//!
//! Spawns actual Sampler and Trainer threads bridged by the bounded
//! host-memory global queue, trains a real GraphSAGE model with
//! asynchronous bounded-staleness updates, and reports throughput
//! accounting — the paper's architecture without the timing simulator.
//! Samplers that finish early flip into standby Trainers when the §5.3
//! profit metric is positive.
//!
//! Run with: `cargo run --release --example threaded_runtime`

use gnnlab::core::threaded::{run_threaded, ThreadedConfig};
use gnnlab::graph::gen::{sbm, SbmParams};
use gnnlab::tensor::ModelKind;

fn main() {
    let graph = sbm(&SbmParams {
        num_vertices: 3000,
        num_classes: 6,
        avg_degree: 12.0,
        intra_prob: 0.88,
        feat_dim: 12,
        noise: 0.9,
        seed: 13,
    })
    .expect("valid SBM parameters");

    for (ns, nt) in [(1usize, 1usize), (1, 3), (2, 6)] {
        let start = std::time::Instant::now();
        let res = run_threaded(
            &graph,
            ModelKind::GraphSage,
            &ThreadedConfig {
                num_samplers: ns,
                num_trainers: nt,
                epochs: 8,
                batch_size: 32,
                hidden_dim: 24,
                lr: 0.01,
                seed: 13,
                cache_alpha: 0.25,
                ..Default::default()
            },
        )
        .expect("no executor crashed");
        println!(
            "{ns} Sampler(s) + {nt} Trainer(s): {} batches in {:.2}s wall, \
             peak queue depth {}, {} standby switch(es), \
             {:.1}ms blocked on the queue, cache hit {:.0}%, final accuracy {:.1}%",
            res.batches_trained,
            start.elapsed().as_secs_f64(),
            res.peak_queue_depth,
            res.switches,
            res.queue_blocked_ns as f64 * 1e-6,
            res.cache_hit_rate * 100.0,
            res.final_accuracy * 100.0
        );
        assert_eq!(res.batches_trained, res.samples_produced);
    }
    println!(
        "\nEvery sample produced was trained exactly once; accuracy is stable\n\
         across executor configurations (bounded-staleness async updates).\n\
         Samplers block at the queue's capacity instead of racing ahead, and\n\
         idle Trainers sleep on the queue's condvar instead of spinning."
    );
}
