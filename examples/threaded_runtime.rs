//! The factored architecture as a real concurrent program.
//!
//! Spawns actual Sampler and Trainer threads bridged by the host-memory
//! global queue (crossbeam), trains a real GraphSAGE model with
//! asynchronous bounded-staleness updates, and reports throughput
//! accounting — the paper's architecture without the timing simulator.
//!
//! Run with: `cargo run --release --example threaded_runtime`

use gnnlab::core::threaded::{run_threaded, ThreadedConfig};
use gnnlab::graph::gen::{sbm, SbmParams};
use gnnlab::tensor::ModelKind;

fn main() {
    let graph = sbm(&SbmParams {
        num_vertices: 3000,
        num_classes: 6,
        avg_degree: 12.0,
        intra_prob: 0.88,
        feat_dim: 12,
        noise: 0.9,
        seed: 13,
    })
    .expect("valid SBM parameters");

    for (ns, nt) in [(1usize, 1usize), (1, 3), (2, 6)] {
        let start = std::time::Instant::now();
        let res = run_threaded(
            &graph,
            ModelKind::GraphSage,
            &ThreadedConfig {
                num_samplers: ns,
                num_trainers: nt,
                epochs: 8,
                batch_size: 32,
                hidden_dim: 24,
                lr: 0.01,
                seed: 13,
                cache_alpha: 0.25,
            },
        );
        println!(
            "{ns} Sampler(s) + {nt} Trainer(s): {} batches in {:.2}s wall, \
             peak queue depth {}, cache hit {:.0}%, final accuracy {:.1}%",
            res.batches_trained,
            start.elapsed().as_secs_f64(),
            res.peak_queue_depth,
            res.cache_hit_rate * 100.0,
            res.final_accuracy * 100.0
        );
        assert_eq!(res.batches_trained, res.samples_produced);
    }
    println!("\nEvery sample produced was trained exactly once; accuracy is stable\nacross executor configurations (bounded-staleness async updates).");
}
