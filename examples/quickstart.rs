//! Quickstart: the two faces of GNNLab-rs in one program.
//!
//! 1. **Real training** — build a small planted-community graph, train a
//!    GraphSAGE model with the actual (CPU-executed) training loop, and
//!    watch accuracy rise.
//! 2. **Performance simulation** — instantiate a scaled-down OGB-Papers
//!    workload and run one epoch of the factored GNNLab runtime on the
//!    simulated 8×V100 testbed, printing the paper-style stage breakdown.
//!
//! Run with: `cargo run --release --example quickstart`

use gnnlab::core::runtime::{run_system, SimContext};
use gnnlab::core::train_real::{train_to_accuracy, ConvergenceConfig};
use gnnlab::core::{SystemKind, Workload};
use gnnlab::graph::gen::{sbm, SbmParams};
use gnnlab::graph::{DatasetKind, Scale};
use gnnlab::tensor::ModelKind;

fn main() {
    // --- Part 1: really train a GNN. ---------------------------------------
    println!("== Part 1: train GraphSAGE on a planted-community graph ==");
    let graph = sbm(&SbmParams {
        num_vertices: 2000,
        num_classes: 6,
        avg_degree: 12.0,
        intra_prob: 0.88,
        feat_dim: 12,
        noise: 1.0,
        seed: 7,
    })
    .expect("valid SBM parameters");
    let result = train_to_accuracy(
        &graph,
        ModelKind::GraphSage,
        &ConvergenceConfig {
            target_accuracy: 0.85,
            max_epochs: 30,
            num_trainers: 2,
            batch_size: 32,
            hidden_dim: 32,
            lr: 0.01,
            seed: 7,
        },
    );
    for (updates, acc) in &result.history {
        println!(
            "  after {updates:>4} gradient updates: test accuracy {:.1}%",
            acc * 100.0
        );
    }
    println!(
        "  -> {} in {} epochs ({} updates)\n",
        if result.converged {
            "converged"
        } else {
            "did not converge"
        },
        result.epochs,
        result.gradient_updates
    );

    // --- Part 2: simulate the factored runtime on the paper's testbed. -----
    println!("== Part 2: one GNNLab epoch, GCN on OGB-Papers (1/1024 scale, 8 simulated V100s) ==");
    let workload = Workload::new(ModelKind::Gcn, DatasetKind::Papers, Scale::new(1024), 42);
    let ctx = SimContext::new(&workload, SystemKind::GnnLab);
    let report = run_system(&ctx).expect("OGB-Papers fits the factored design");
    println!(
        "  allocation: {} Samplers + {} Trainers (flexible scheduling)",
        report.num_samplers, report.num_trainers
    );
    println!("  stage breakdown: {}", report.table5_cell());
    println!(
        "  epoch time: {:.2} s (simulated, paper-scale)",
        report.epoch_time
    );

    // And the baseline for contrast.
    let dgl =
        run_system(&SimContext::new(&workload, SystemKind::DglLike)).expect("OGB-Papers fits DGL");
    println!(
        "  DGL epoch time: {:.2} s  ->  GNNLab speedup {:.1}x",
        dgl.epoch_time,
        dgl.epoch_time / report.epoch_time
    );
}
