//! The paper's headline comparison: the factored (space-sharing) design
//! against time-sharing baselines on every dataset.
//!
//! For each dataset (GraphSAGE workload) this prints a Table-4-style row —
//! PyG-like, DGL-like, T_SOTA and GNNLab epoch times on the simulated
//! 8×V100 machine — plus the capacity story: which systems OOM, and what
//! cache ratio each design affords.
//!
//! Run with: `cargo run --release --example factored_vs_timeshare`

use gnnlab::core::report::RunError;
use gnnlab::core::runtime::{run_system, SimContext};
use gnnlab::core::{SystemKind, Workload};
use gnnlab::graph::{DatasetKind, Scale};
use gnnlab::tensor::ModelKind;

fn main() {
    let scale = Scale::new(1024);
    println!(
        "GraphSAGE on 8 simulated V100-16GB GPUs (scale 1/{})\n",
        scale.factor()
    );
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>14} {:>10} {:>8}",
        "Dataset", "PyG", "DGL", "T_SOTA", "GNNLab", "cache R%", "hit%"
    );
    for ds in DatasetKind::ALL {
        let w = Workload::new(ModelKind::GraphSage, ds, scale, 42);
        let mut cells: Vec<String> = Vec::new();
        let mut gnnlab_extra = (String::new(), String::new());
        for system in SystemKind::ALL {
            let ctx = SimContext::new(&w, system);
            match run_system(&ctx) {
                Ok(rep) => {
                    if system == SystemKind::GnnLab {
                        cells.push(format!(
                            "{:.2}s ({}S{}T)",
                            rep.epoch_time, rep.num_samplers, rep.num_trainers
                        ));
                        gnnlab_extra = (
                            format!("{:.0}%", rep.cache_ratio * 100.0),
                            format!("{:.0}%", rep.hit_rate * 100.0),
                        );
                    } else {
                        cells.push(format!("{:.2}s", rep.epoch_time));
                    }
                }
                Err(RunError::Oom { .. }) => cells.push("OOM".to_string()),
                Err(RunError::Unsupported(_)) => cells.push("x".to_string()),
                Err(RunError::ExecutorsLost { .. }) => cells.push("LOST".to_string()),
            }
        }
        println!(
            "{:<8} {:>9} {:>9} {:>9} {:>14} {:>10} {:>8}",
            ds.abbrev(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            gnnlab_extra.0,
            gnnlab_extra.1
        );
    }
    println!(
        "\nThe factored design wins everywhere except tiny PR (everything fits one GPU),\n\
         and is the only system that can train on UK-2006 at all — the §4 capacity story."
    );
}
