//! Explore the caching-policy design space of §6.
//!
//! Sweeps cache ratio × policy (Random / Degree / PreSC#1 / PreSC#2 /
//! Optimal) for a chosen dataset and sampling algorithm, printing hit
//! rates and transferred data — a superset of Figs. 5, 10 and 11.
//!
//! Usage: `cargo run --release --example cache_policy_explorer [PR|TW|PA|UK] [random|walks|weighted]`

use gnnlab::cache::{load_cache, CachePolicy, CacheStats, PolicyKind};
use gnnlab::core::trace::EpochTrace;
use gnnlab::core::Workload;
use gnnlab::graph::{DatasetKind, Scale};
use gnnlab::sampling::{AlgorithmKind, Kernel};
use gnnlab::tensor::ModelKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ds = match args.first().map(String::as_str) {
        Some("PR") => DatasetKind::Products,
        Some("TW") => DatasetKind::Twitter,
        Some("UK") => DatasetKind::Uk,
        _ => DatasetKind::Papers,
    };
    let algo = match args.get(1).map(String::as_str) {
        Some("walks") => AlgorithmKind::RandomWalks,
        Some("weighted") => AlgorithmKind::Khop3Weighted,
        _ => AlgorithmKind::Khop3Random,
    };
    let w = Workload::new(ModelKind::Gcn, ds, Scale::new(1024), 42).with_algorithm(algo);
    println!(
        "Cache-policy explorer: {} with {} ({} vertices, {} edges, training set {})\n",
        w.dataset.spec.name,
        algo.label(),
        w.dataset.csr.num_vertices(),
        w.dataset.csr.num_edges(),
        w.dataset.train_set.len()
    );

    // Measure on an epoch PreSC has not seen.
    let trace = EpochTrace::record(&w, Kernel::FisherYates, 5);
    let policies = [
        PolicyKind::Random,
        PolicyKind::Degree,
        PolicyKind::PreSC { k: 1 },
        PolicyKind::PreSC { k: 2 },
        PolicyKind::Optimal { epochs: 6 },
    ];
    // Hotness maps are alpha-independent: compute once per policy.
    let sampler = w.sampler(Kernel::FisherYates);
    let hotness: Vec<Vec<f64>> = policies
        .iter()
        .map(|&p| {
            CachePolicy::hotness(
                p,
                &w.dataset.csr,
                &w.dataset.train_set,
                sampler.as_ref(),
                w.batch_size(),
                w.seed,
            )
            .hotness
        })
        .collect();

    print!("{:<12}", "ratio");
    for p in &policies {
        print!("{:>12}", p.label());
    }
    println!();
    let n = w.dataset.csr.num_vertices();
    let row_bytes = w.dataset.row_bytes();
    for alpha in [0.01, 0.02, 0.05, 0.10, 0.20, 0.30] {
        print!("{:<12}", format!("{:.0}%", alpha * 100.0));
        for h in &hotness {
            let table = load_cache(h, alpha, n);
            let mut stats = CacheStats::default();
            for b in &trace.batches {
                stats.record(&table, &b.input_nodes, row_bytes);
            }
            print!("{:>12}", format!("{:.1}%", stats.hit_rate() * 100.0));
        }
        println!();
    }
    println!("\n(hit rate measured on a held-out epoch; PreSC pre-samples epochs 0..K)");
}
