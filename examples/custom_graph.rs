//! Bring-your-own-graph: load an edge list from disk, wrap it as a
//! custom dataset, and run the full GNNLab pipeline on it — sampling,
//! PreSC caching, and the factored epoch simulation.
//!
//! The example writes a small demo edge list to a temp file first so it is
//! self-contained; point `read_edge_list` at your own file to use real
//! data (format: `src dst [weight]` per line, `#` comments).
//!
//! Run with: `cargo run --release --example custom_graph`

use gnnlab::cache::PolicyKind;
use gnnlab::core::runtime::{run_system, SimContext};
use gnnlab::core::{SystemKind, Workload};
use gnnlab::graph::io::{read_edge_list, write_edge_list};
use gnnlab::graph::{gen, trainset, Dataset, FeatureStore};
use gnnlab::tensor::ModelKind;

fn main() {
    // 1. Produce a demo edge list on disk (stand-in for your data).
    let mut path = std::env::temp_dir();
    path.push(format!("gnnlab_custom_demo_{}.txt", std::process::id()));
    let demo = gen::chung_lu(20_000, 400_000, 2.0, 7).expect("valid parameters");
    write_edge_list(&demo, &path).expect("writable temp dir");
    println!("wrote demo edge list to {}", path.display());

    // 2. Load it back, attach features and a training set.
    let csr = read_edge_list(&path, None).expect("readable edge list");
    println!(
        "loaded: {} vertices, {} edges (max out-degree {})",
        csr.num_vertices(),
        csr.num_edges(),
        csr.max_out_degree()
    );
    let n = csr.num_vertices();
    let features = FeatureStore::virtual_store(n, 128); // byte accounting only
    let train_set = trainset::random_train_set(n, n / 50, 7);
    let dataset = Dataset::custom(csr, features, train_set);

    // 3. Run the factored system on it (full-scale: your data is the
    //    real size, so no scaling applies).
    let workload = Workload::with_dataset(ModelKind::GraphSage, dataset, 32, 7);
    let ctx =
        SimContext::new(&workload, SystemKind::GnnLab).with_policy(PolicyKind::PreSC { k: 1 });
    match run_system(&ctx) {
        Ok(rep) => {
            println!(
                "GNNLab epoch: {:.4} s  ({} Samplers + {} Trainers, cache {:.0}%, hit {:.0}%)",
                rep.epoch_time,
                rep.num_samplers,
                rep.num_trainers,
                rep.cache_ratio * 100.0,
                rep.hit_rate * 100.0
            );
        }
        Err(e) => println!("run failed: {e}"),
    }
    std::fs::remove_file(&path).ok();
}
