//! Offline shim of `serde_derive`: a dependency-free (no syn/quote)
//! `#[derive(Serialize)]` covering the shapes this workspace uses:
//!
//! - structs with named fields → `Value::Object` in declaration order
//! - enums with unit variants → `Value::Str(variant_name)`
//! - enums with newtype variants → `{"VariantName": value}`
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported;
//! deriving on such a type is a compile error, not a silent mis-encode.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => panic!("derive(Serialize) shim: expected struct or enum, got {other:?}"),
    };
    i += 1;

    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(Serialize) shim: expected type name, got {other:?}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize) shim does not support generic types ({name})");
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(_) => i += 1,
            None => panic!("derive(Serialize) shim: no braced body on {name}"),
        }
    };

    let impl_body = if kind == "struct" {
        struct_impl(&name, body.stream())
    } else {
        enum_impl(&name, body.stream())
    };

    impl_body
        .parse()
        .expect("derive(Serialize) shim: generated code parses")
}

/// Advances past leading `#[...]` attributes and `pub`/`pub(...)`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2, // '#' + [..]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Splits a brace-body stream into top-level comma-separated items,
/// ignoring commas nested inside generic angle brackets.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut items = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                current.push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                current.push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.is_empty() {
                    items.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(tt),
        }
    }
    if !current.is_empty() {
        items.push(current);
    }
    items
}

fn struct_impl(name: &str, body: TokenStream) -> String {
    let mut pushes = String::new();
    for item in split_top_level(body) {
        let mut j = 0usize;
        skip_attrs_and_vis(&item, &mut j);
        let field = match &item.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("derive(Serialize) shim: expected field name in {name}, got {other:?}"),
        };
        pushes.push_str(&format!(
            "fields.push((\"{field}\".to_string(), serde::Serialize::to_value(&self.{field})));\n"
        ));
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 let mut fields: Vec<(String, serde::Value)> = Vec::new();\n\
                 {pushes}\
                 serde::Value::Object(fields)\n\
             }}\n\
         }}"
    )
}

fn enum_impl(name: &str, body: TokenStream) -> String {
    let mut arms = String::new();
    for item in split_top_level(body) {
        let mut j = 0usize;
        skip_attrs_and_vis(&item, &mut j);
        let variant = match &item.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("derive(Serialize) shim: expected variant in {name}, got {other:?}"),
        };
        j += 1;
        match item.get(j) {
            None => {
                arms.push_str(&format!(
                    "{name}::{variant} => serde::Value::Str(\"{variant}\".to_string()),\n"
                ));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                arms.push_str(&format!(
                    "{name}::{variant}(inner) => serde::Value::Object(vec![\
                         (\"{variant}\".to_string(), serde::Serialize::to_value(inner))]),\n"
                ));
            }
            other => panic!(
                "derive(Serialize) shim: unsupported variant shape {name}::{variant} {other:?}"
            ),
        }
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 match self {{\n{arms}}}\n\
             }}\n\
         }}"
    )
}
