//! Configuration and the deterministic case RNG.

/// Subset of upstream `ProptestConfig` that matters here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the shim keeps that so un-configured
        // tests get comparable coverage.
        ProptestConfig { cases: 256 }
    }
}

/// A small, fast, deterministic RNG (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test's name so every test draws an
    /// independent, reproducible stream.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Seeds directly from an integer.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_test_streams_are_reproducible() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
