//! `any::<T>()` — full-domain strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::from_seed(3);
        let strat = any::<bool>();
        let trues = (0..100).filter(|_| strat.generate(&mut rng)).count();
        assert!(trues > 20 && trues < 80, "trues {trues}");
    }
}
