//! Collection strategies: `prop::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive-exclusive size window for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            start: *r.start(),
            end: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

/// A strategy generating `Vec`s of an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_bounds() {
        let mut rng = TestRng::from_seed(11);
        let strat = vec(0u32..50, 2..6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()), "len {}", v.len());
            assert!(v.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn tuple_elements_compose() {
        let mut rng = TestRng::from_seed(12);
        let strat = vec((0u32..5, 0u32..5), 1..4);
        let v = strat.generate(&mut rng);
        assert!(!v.is_empty());
    }
}
