//! The `Strategy` trait and range/tuple strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let (a, b) = (0u32..4, 10u32..14).generate(&mut rng);
            assert!(a < 4 && (10..14).contains(&b));
        }
    }

    #[test]
    fn just_yields_the_value() {
        let mut rng = TestRng::from_seed(2);
        assert_eq!(Just(42).generate(&mut rng), 42);
    }
}
