//! Offline shim of the `proptest` API surface this workspace uses.
//!
//! Differences from upstream, by design: cases are generated from a
//! deterministic per-test RNG (seeded by the test's name), there is no
//! shrinking, and failure persistence (`.proptest-regressions`) is
//! ignored. `prop_assert!`/`prop_assert_eq!` panic immediately with the
//! failing message, which the test harness reports as usual.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything `use proptest::prelude::*` is expected to bring in.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares deterministic property tests.
///
/// Supports the upstream grammar subset:
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let ($($arg,)+) =
                        ($($crate::strategy::Strategy::generate(&$strat, &mut rng),)+);
                    let run = || -> () { $body };
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest shim: '{}' failed at case {}/{}",
                            stringify!($name), case + 1, config.cases
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}
