//! Offline shim of the `crossbeam` subset this workspace uses:
//! `crossbeam::queue::SegQueue`. The shim trades the lock-free segment
//! list for a mutexed `VecDeque` — identical semantics (unbounded MPMC
//! FIFO), adequate throughput for the threaded-runtime workloads here.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC FIFO queue.
    #[derive(Debug)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes onto the back.
        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        /// Pops from the front.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Current number of queued items.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Arc;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }

        #[test]
        fn concurrent_pushes_all_arrive() {
            let q = Arc::new(SegQueue::new());
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..500 {
                            q.push(t * 1000 + i);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let mut all = Vec::new();
            while let Some(v) = q.pop() {
                all.push(v);
            }
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), 2000);
        }
    }
}
