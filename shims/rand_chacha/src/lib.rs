//! Offline shim of `rand_chacha`: a genuine ChaCha8 block function behind
//! the `RngCore`/`SeedableRng` traits of the sibling `rand` shim.
//!
//! Output is deterministic per seed (the property the workspace relies
//! on) but is not bit-compatible with upstream `rand_chacha`, which
//! layers a different word order and stream-offset API on top.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha stream cipher with 8 rounds, exposed as an RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input block (constants, key, counter, nonce).
    input: [u32; 16],
    /// The current 64-byte output block as 16 words.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    cursor: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.input;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in working.iter_mut().zip(self.input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = working;
        self.cursor = 0;
        // 64-bit block counter in words 12..14.
        let counter = (self.input[12] as u64 | (self.input[13] as u64) << 32).wrapping_add(1);
        self.input[12] = counter as u32;
        self.input[13] = (counter >> 32) as u32;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut input = [0u32; 16];
        // "expand 32-byte k"
        input[0] = 0x6170_7865;
        input[1] = 0x3320_646e;
        input[2] = 0x7962_2d32;
        input[3] = 0x6b20_6574;
        for i in 0..8 {
            input[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            input,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | hi << 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mean = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
