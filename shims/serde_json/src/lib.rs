//! Offline shim of `serde_json`: renders the serde shim's [`Value`] tree
//! to JSON text and parses JSON text back into a [`Value`].

pub use serde::Value;

use serde::Serialize;
use std::fmt::Write as _;

/// A JSON error (parse position + message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    pos: usize,
}

impl Error {
    fn new(msg: impl Into<String>, pos: usize) -> Self {
        Error {
            msg: msg.into(),
            pos,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => {
            if n.is_finite() {
                let _ = write!(out, "{n}");
            } else {
                // JSON has no NaN/Infinity; encode as null like serde_json's
                // permissive modes.
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                render(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`].
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("expected '{lit}'"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::new(format!("unexpected '{}'", c as char), self.pos)),
            None => Err(Error::new("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(Error::new("unterminated string", start)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape", start))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape", start))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape", start))?;
                            // Surrogate pairs are not needed by our own
                            // output (we never emit them); reject cleanly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("surrogate \\u escape", start))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape", start)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8", self.pos))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number", start))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new("invalid number", start))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::I64(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::U64(u))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new("invalid number", start))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_value() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a \"quoted\" str\n".into())),
            ("count".into(), Value::I64(-12)),
            ("big".into(), Value::U64(u64::MAX)),
            ("pi".into(), Value::F64(3.25)),
            (
                "arr".into(),
                Value::Array(vec![Value::Null, Value::Bool(true), Value::Object(vec![])]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn parses_plain_json() {
        let v = from_str(r#"{"a": [1, 2.5, "x"], "b": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("tru").is_err());
        assert!(from_str("{} x").is_err());
    }

    #[test]
    fn nan_serializes_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
