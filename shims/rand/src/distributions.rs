//! The `rand::distributions` subset: `Distribution`, `Standard`,
//! `WeightedIndex`.

use crate::RngCore;
use std::borrow::Borrow;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" uniform distribution per type: full range for integers,
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 significant bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Error building a [`WeightedIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// No weights were provided.
    NoItem,
    /// A weight was negative or non-finite.
    InvalidWeight,
    /// All weights are zero.
    AllWeightsZero,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights provided"),
            WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Samples indices `0..n` proportionally to the given weights.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Builds the distribution from non-negative finite weights.
    pub fn new<I>(weights: I) -> Result<WeightedIndex, WeightedError>
    where
        I: IntoIterator,
        I::Item: Borrow<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let unit: f64 = Standard.sample(rng);
        let target = unit * self.total;
        // First cumulative weight strictly above the target.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&target).expect("finite weights"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let dist = WeightedIndex::new([0.0, 1.0, 0.0]).unwrap();
        let mut rng = Lcg(3);
        for _ in 0..200 {
            assert_eq!(dist.sample(&mut rng), 1);
        }
    }

    #[test]
    fn weighted_index_rejects_bad_inputs() {
        assert!(matches!(
            WeightedIndex::new(std::iter::empty::<f64>()),
            Err(WeightedError::NoItem)
        ));
        assert!(matches!(
            WeightedIndex::new([0.0, 0.0]),
            Err(WeightedError::AllWeightsZero)
        ));
        assert!(matches!(
            WeightedIndex::new([-1.0]),
            Err(WeightedError::InvalidWeight)
        ));
    }

    #[test]
    fn weighted_index_is_roughly_proportional() {
        let dist = WeightedIndex::new([1.0, 3.0]).unwrap();
        let mut rng = Lcg(9);
        let hits = (0..4000).filter(|_| dist.sample(&mut rng) == 1).count();
        assert!((2500..3500).contains(&hits), "hits {hits}");
    }
}
