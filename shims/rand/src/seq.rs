//! The `rand::seq` subset: `SliceRandom`.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the first `amount` elements into place; returns the
    /// shuffled prefix and untouched-order suffix.
    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [Self::Item], &mut [Self::Item]);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [T], &mut [T]) {
        let amount = amount.min(self.len());
        for i in 0..amount {
            let j = rng.gen_range(i..self.len());
            self.swap(i, j);
        }
        self.split_at_mut(amount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut Lcg(5));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn partial_shuffle_splits_at_amount() {
        let mut v: Vec<u32> = (0..10).collect();
        let (head, tail) = v.partial_shuffle(&mut Lcg(2), 4);
        assert_eq!(head.len(), 4);
        assert_eq!(tail.len(), 6);
    }

    #[test]
    fn choose_respects_bounds() {
        let v = [7, 8, 9];
        let mut rng = Lcg(1);
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
