//! Offline shim of the `rand 0.8` API surface used by this workspace.
//!
//! The build environment cannot reach crates.io, so this crate stands in
//! for the real `rand`: same trait names, same call signatures, simpler
//! internals. Streams are deterministic per seed but are **not**
//! bit-compatible with upstream `rand` — nothing in the workspace depends
//! on upstream streams, only on determinism.

pub mod distributions;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core RNG interface: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of a `u64` draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64 (the
    /// same expansion upstream `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Draws a value from `distr`.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(42);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.7..1.3);
            assert!((0.7..1.3).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
