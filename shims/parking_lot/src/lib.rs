//! Offline shim of `parking_lot`: the non-poisoning lock API over
//! `std::sync` primitives. `lock()`/`read()`/`write()` return guards
//! directly (a poisoned std lock — a panic while held — just yields the
//! inner value, matching parking_lot's "no poisoning" semantics).

use std::sync::{self, PoisonError};
use std::time::Duration;

pub use sync::MutexGuard;
pub use sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Safety dance: std's API consumes the guard; re-acquire on wake.
        // We temporarily move the guard out and back via raw replace.
        replace_with(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until notified or `timeout` elapses; returns `true` if the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let mut timed_out = false;
        replace_with(guard, |g| {
            let (g, res) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = res.timed_out();
            g
        });
        timed_out
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Replaces `*slot` with `f(old)`, aborting on panic in `f` (which cannot
/// happen for condvar waits — they return the reacquired guard).
fn replace_with<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    unsafe {
        let old = std::ptr::read(slot);
        let new = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }
}
