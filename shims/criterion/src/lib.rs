//! Offline shim of the `criterion` API surface this workspace's benches
//! use. Instead of criterion's statistical engine it runs a short
//! fixed-iteration measurement and prints mean wall time per iteration —
//! enough to compare kernels by eye and to keep `cargo bench` working
//! offline.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-rate annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's display identity: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is only a parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// Renders the display id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The measurement driver passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(full_name: &str, iters: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / iters.max(1) as f64;
    println!("{full_name:<60} {:>12.3} us/iter", per_iter * 1e6);
}

/// The top-level benchmark context.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 10 }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_bench(&id.into_id(), self.iters, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: self.iters,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates the group's work rate (display-only in the shim).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Overrides the sample count (mapped onto iterations here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(1, 100);
        self
    }

    /// Caps measurement time (accepted and ignored by the shim).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.into_id()), self.iters, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.id), self.iters, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine() {
        let mut calls = 0u64;
        run_bench("demo", 5, |b| b.iter(|| calls += 1));
        assert_eq!(calls, 6); // warm-up + 5 timed
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
