//! Offline shim of the `criterion` API surface this workspace's benches
//! use. Instead of criterion's statistical engine it times every
//! iteration individually and prints the median wall time per iteration —
//! enough to compare kernels by eye and to keep `cargo bench` working
//! offline.
//!
//! Two criterion conventions are honored:
//!
//! - `cargo bench -- --test` runs every benchmark once (smoke mode — the
//!   CI job uses it to prove benches compile and run without paying for a
//!   measurement);
//! - setting `GNNLAB_BENCH_JSON=<path>` appends one JSON line per
//!   benchmark (`{"name": ..., "median_ns": ..., "iters": ...}`) so runs
//!   can be diffed or committed as machine-readable results.

use std::io::Write;
use std::time::{Duration, Instant};

/// Whether the harness was invoked in criterion's `--test` smoke mode
/// (`cargo bench -- --test`): run everything once, skip real measurement.
fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Appends one result line to the `GNNLAB_BENCH_JSON` file, if set.
fn export_json(name: &str, median: Duration, iters: u64) {
    let Ok(path) = std::env::var("GNNLAB_BENCH_JSON") else {
        return;
    };
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        eprintln!("GNNLAB_BENCH_JSON: cannot open {path}");
        return;
    };
    let escaped: String = name
        .chars()
        .flat_map(|ch| match ch {
            '"' | '\\' => vec!['\\', ch],
            _ => vec![ch],
        })
        .collect();
    let _ = writeln!(
        f,
        "{{\"name\": \"{escaped}\", \"median_ns\": {}, \"iters\": {iters}}}",
        median.as_nanos()
    );
}

/// Opaque-to-the-optimizer value passthrough.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-rate annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's display identity: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is only a parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// Renders the display id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The measurement driver passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine`, timing each iteration individually.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Median of the recorded per-iteration times (zero if none).
fn median(samples: &mut [Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2
    }
}

fn run_bench(full_name: &str, iters: u64, f: impl FnOnce(&mut Bencher)) {
    let iters = if quick_mode() { 1 } else { iters };
    let mut b = Bencher {
        iters,
        samples: Vec::with_capacity(iters as usize),
    };
    f(&mut b);
    let med = median(&mut b.samples);
    println!(
        "{full_name:<60} {:>12.3} us/iter (median of {iters})",
        med.as_secs_f64() * 1e6
    );
    export_json(full_name, med, iters);
}

/// The top-level benchmark context.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 10 }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_bench(&id.into_id(), self.iters, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: self.iters,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates the group's work rate (display-only in the shim).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Overrides the sample count (mapped onto iterations here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(1, 100);
        self
    }

    /// Caps measurement time (accepted and ignored by the shim).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.into_id()), self.iters, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.id), self.iters, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine() {
        let mut calls = 0u64;
        run_bench("demo", 5, |b| b.iter(|| calls += 1));
        assert_eq!(calls, 6); // warm-up + 5 timed
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn median_of_samples() {
        let ms = Duration::from_millis;
        assert_eq!(median(&mut []), Duration::ZERO);
        assert_eq!(median(&mut [ms(5)]), ms(5));
        assert_eq!(median(&mut [ms(9), ms(1), ms(5)]), ms(5));
        assert_eq!(median(&mut [ms(4), ms(2), ms(8), ms(6)]), ms(5));
    }
}
