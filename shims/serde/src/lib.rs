//! Offline shim of `serde`'s serialization API.
//!
//! Upstream serde is a zero-copy visitor framework; this shim collapses
//! it to the one shape the workspace needs: `Serialize` produces a
//! [`Value`] tree, and `serde_json` renders/parses that tree. The
//! `derive` feature re-exports a dependency-free derive macro for structs
//! with named fields and simple enums.

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree.
///
/// Object fields keep insertion order so serialized output is
/// deterministic and mirrors struct declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `i64` if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value's object fields if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }
}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Value::I64(i),
                    Err(_) => Value::U64(v),
                }
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(5u32.to_value(), Value::I64(5));
        assert_eq!(u64::MAX.to_value(), Value::U64(u64::MAX));
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(None::<u32>.to_value(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1u32, "a".to_string())].to_value();
        assert_eq!(
            v,
            Value::Array(vec![Value::Array(vec![
                Value::I64(1),
                Value::Str("a".into())
            ])])
        );
    }

    #[test]
    fn object_lookup_helpers() {
        let v = Value::Object(vec![
            ("x".into(), Value::F64(1.5)),
            ("y".into(), Value::Str("s".into())),
        ]);
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("y").and_then(Value::as_str), Some("s"));
        assert!(v.get("z").is_none());
    }
}
